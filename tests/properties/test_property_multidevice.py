"""Property-based equivalence of the fused and serial multi-device loops.

The fused multi-device superstep loop advances every device's walkers in one
shared frontier; the serial composition runs one frontier per device, one
device after another.  Because every walker's randomness, counters and
termination are strictly per-walker, the two must be *bit-identical* in
everything — paths, counter totals (global and per device), per-query
simulated times, device kernel times and hence the makespan — for any device
count, partition policy, workload and seed.  Hypothesis hunts for
counterexamples across that whole grid.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.generator import compile_workload
from repro.graph.generators import barabasi_albert_graph
from repro.graph.labels import random_edge_labels
from repro.graph.weights import uniform_weights
from repro.gpusim.device import A6000
from repro.gpusim.multigpu import PARTITION_POLICIES
from repro.runtime.engine import WalkEngine
from repro.runtime.frontier import run_multi_device, run_multi_device_serial
from repro.runtime.selector import CostModelSelector
from repro.walks.deepwalk import DeepWalkSpec
from repro.walks.metapath import MetaPathSpec
from repro.walks.node2vec import Node2VecSpec
from repro.walks.state import make_queries

DEVICE = dataclasses.replace(A6000, parallel_lanes=8)

SPEC_FACTORIES = {
    "deepwalk": DeepWalkSpec,
    "node2vec": Node2VecSpec,
    "metapath": lambda: MetaPathSpec(schema=(0, 1, 2)),
}


def build_graph(seed: int):
    graph = barabasi_albert_graph(24 + (seed % 4) * 10, 3, seed=seed,
                                  name=f"fused-{seed}")
    graph = graph.with_weights(uniform_weights(graph, seed=seed))
    return graph.with_labels(random_edge_labels(graph, num_labels=4, seed=seed))


class TestFusedMatchesSerialComposition:
    @settings(max_examples=20, deadline=None)
    @given(
        graph_seed=st.integers(min_value=0, max_value=30),
        run_seed=st.integers(min_value=0, max_value=500),
        workload=st.sampled_from(sorted(SPEC_FACTORIES)),
        num_devices=st.sampled_from([1, 2, 4]),
        policy=st.sampled_from(PARTITION_POLICIES),
        walk_length=st.integers(min_value=1, max_value=6),
    )
    def test_fused_equals_serial(self, graph_seed, run_seed, workload,
                                 num_devices, policy, walk_length):
        graph = build_graph(graph_seed)
        spec = SPEC_FACTORIES[workload]()
        compiled = compile_workload(spec, graph)
        engine = WalkEngine(
            graph=graph, spec=spec, device=DEVICE, seed=run_seed,
            selector=CostModelSelector(), compiled=compiled,
            selection_overhead=True, warp_switch_overhead=True,
            num_devices=num_devices, partition_policy=policy,
        )
        queries = make_queries(graph.num_nodes, walk_length=walk_length,
                               num_queries=min(16, graph.num_nodes), seed=run_seed)
        fused = run_multi_device(engine, queries)
        serial = run_multi_device_serial(engine, queries)

        assert fused.paths == serial.paths
        assert fused.sampler_usage == serial.sampler_usage
        assert fused.total_steps == serial.total_steps
        assert fused.counters.as_dict() == serial.counters.as_dict()
        assert np.array_equal(fused.per_query_ns, serial.per_query_ns)
        assert fused.kernel.time_ns == serial.kernel.time_ns
        assert [k.time_ns for k in fused.device_kernels] == [
            k.time_ns for k in serial.device_kernels
        ]
        assert [k.counters.as_dict() for k in fused.device_kernels] == [
            k.counters.as_dict() for k in serial.device_kernels
        ]
        assert [k.num_queries for k in fused.device_kernels] == [
            k.num_queries for k in serial.device_kernels
        ]
        assert fused.load_imbalance == serial.load_imbalance
