"""Sampling-strategy selection policies (Section 4.1, Fig. 13).

The production policy is :class:`CostModelSelector`, which evaluates Eq. 11
per node per step using the compiler-generated max/sum estimates and the
profiled cost ratio.  The alternatives the paper compares against in its
sensitivity study — random selection and degree-threshold selection — are
implemented alongside, plus a fixed selector for the eRJS-only / eRVS-only
ablations of Fig. 11.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import RuntimeSelectionError
from repro.runtime.cost_model import CostModel
from repro.sampling.base import Sampler, StepContext
from repro.sampling.batch import BatchStepContext
from repro.sampling.erjs import EnhancedRejectionSampler
from repro.sampling.ervs import EnhancedReservoirSampler


@dataclass(frozen=True)
class DegreeThresholdRule:
    """Declarative form of the common degree/threshold selection shape.

    A selector whose per-step decision is "run ``above`` when the node degree
    reaches ``threshold``, else ``below``" can return one of these from
    :meth:`SamplerSelector.batch_rule` and the base class vectorises the
    whole superstep: the per-walker charges in ``charge`` are applied to
    every walker's counter slot and the assignment is a single compare —
    no probe :class:`~repro.sampling.base.StepContext` objects, no per-walker
    Python loop.
    """

    threshold: int
    above: Sampler
    below: Sampler
    #: ``(counter name, amount)`` pairs charged per walker, mirroring what the
    #: scalar ``select`` charges per step.
    charge: tuple[tuple[str, int], ...] = (("random_accesses", 1),)


class SamplerSelector(ABC):
    """Chooses the sampling kernel for one walk step."""

    name: str = "selector"

    @abstractmethod
    def select(self, ctx: StepContext) -> Sampler:
        """Return the kernel to use for the step described by ``ctx``."""

    # ------------------------------------------------------------------ #
    def batch_rule(self) -> DegreeThresholdRule | None:
        """Declarative vectorisable selection rule, when one exists.

        Threshold-style selectors (the common custom shape) describe their
        decision here and inherit a vectorised :meth:`select_batch`; the
        default ``None`` keeps the scalar bridge.
        """
        return None

    def select_batch(self, ctx: BatchStepContext) -> tuple[list[Sampler], np.ndarray]:
        """Choose the kernel for every walker of a superstep at once.

        Returns ``(samplers, assignment)`` where ``assignment[i]`` indexes
        into ``samplers`` for the ``i``-th walker; the batched engine then
        partitions the frontier by kernel and runs each partition through
        one :meth:`~repro.sampling.base.Sampler.sample_batch` call.

        The built-in policies override this with vectorised rules, and any
        selector that declares a :meth:`batch_rule` gets the vectorised
        degree/threshold evaluation below.  Only truly custom selectors fall
        back to the per-walker scalar bridge (with full counter accounting),
        which keeps them working in the batched engine unchanged.
        """
        rule = self.batch_rule()
        if rule is not None:
            for counter_name, amount in rule.charge:
                ctx.charge(counter_name, amount)
            high = ctx.degrees >= rule.threshold
            return [rule.above, rule.below], np.where(high, 0, 1)
        samplers: list[Sampler] = []
        positions: dict[int, int] = {}
        assignment = np.zeros(ctx.size, dtype=np.int64)
        for i in range(ctx.size):
            scalar_ctx, counters = ctx.scalar_context(i)
            sampler = self.select(scalar_ctx)
            ctx.absorb(i, counters)
            key = id(sampler)
            if key not in positions:
                positions[key] = len(samplers)
                samplers.append(sampler)
            assignment[i] = positions[key]
        return samplers, assignment


class CostModelSelector(SamplerSelector):
    """Per-node selection by the first-order cost model (the paper's policy).

    The selection itself costs two uncoalesced reads (the preprocessed
    ``h_MAX`` / ``h_SUM`` entries feeding the estimation helpers) plus a few
    arithmetic operations, which are charged to the step's counters — the
    overhead that makes FlexiWalker marginally slower than a fixed kernel on
    tiny MetaPath runs (Table 2 discussion).
    """

    name = "cost_model"

    def __init__(self, cost_model: CostModel | None = None) -> None:
        self.cost_model = cost_model or CostModel()
        self._erjs = EnhancedRejectionSampler()
        self._ervs = EnhancedReservoirSampler()

    def select(self, ctx: StepContext) -> Sampler:
        # The h_MAX / h_SUM entries are small per-node arrays that stay cache
        # resident, so the reads behave like coalesced accesses.
        ctx.counters.coalesced_accesses += 2
        ctx.counters.weight_computations += 2
        if self.cost_model.prefer_rjs(ctx.bound_hint, ctx.sum_hint):
            return self._erjs
        return self._ervs

    def select_batch(self, ctx: BatchStepContext) -> tuple[list[Sampler], np.ndarray]:
        """Vectorised Eq. 11 over the whole frontier."""
        ctx.charge("coalesced_accesses", 2)
        ctx.charge("weight_computations", 2)
        prefer = np.zeros(ctx.size, dtype=bool)
        if ctx.bound_hints is not None and ctx.sum_hints is not None:
            bound, total = ctx.bound_hints, ctx.sum_hints
            valid = ~np.isnan(bound) & ~np.isnan(total) & (bound > 0) & (total > 0)
            prefer[valid] = self.cost_model.edge_cost_ratio * bound[valid] < total[valid]
        return [self._erjs, self._ervs], np.where(prefer, 0, 1)


class FixedSelector(SamplerSelector):
    """Always run the same kernel (the eRJS-only / eRVS-only ablations)."""

    def __init__(self, sampler: Sampler) -> None:
        self.sampler = sampler
        self.name = f"fixed_{sampler.name.lower()}"

    def select(self, ctx: StepContext) -> Sampler:
        return self.sampler

    def select_batch(self, ctx: BatchStepContext) -> tuple[list[Sampler], np.ndarray]:
        return [self.sampler], np.zeros(ctx.size, dtype=np.int64)


class RandomSelector(SamplerSelector):
    """Pick eRJS or eRVS uniformly at random (Fig. 13 baseline)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)
        self._erjs = EnhancedRejectionSampler()
        self._ervs = EnhancedReservoirSampler()

    def select(self, ctx: StepContext) -> Sampler:
        return self._erjs if self._rng.random() < 0.5 else self._ervs

    def select_batch(self, ctx: BatchStepContext) -> tuple[list[Sampler], np.ndarray]:
        """One coin flip per walker, in frontier order.

        Deterministic per seed within a mode, but the draw *interleaving*
        differs from the scalar engine's walker-major order, so the random
        policy is the one selector whose chosen kernels (and hence paths) are
        not bitwise identical across execution modes — acceptable for a
        sensitivity baseline whose whole point is arbitrary choice.
        """
        flips = self._rng.random(ctx.size)
        return [self._erjs, self._ervs], np.where(flips < 0.5, 0, 1)


class DegreeBasedSelector(SamplerSelector):
    """Reservoir below a degree threshold, rejection above it (Fig. 13 baseline).

    The paper's threshold is 1 000 neighbours; the benchmark harness passes a
    scaled-down threshold matching the scale-model graphs.
    """

    name = "degree_based"

    def __init__(self, threshold: int = 1000) -> None:
        if threshold < 1:
            raise RuntimeSelectionError("degree threshold must be at least 1")
        self.threshold = int(threshold)
        self._erjs = EnhancedRejectionSampler()
        self._ervs = EnhancedReservoirSampler()

    def select(self, ctx: StepContext) -> Sampler:
        ctx.counters.random_accesses += 1
        if ctx.degree >= self.threshold:
            return self._erjs
        return self._ervs

    def batch_rule(self) -> DegreeThresholdRule:
        """The batched form of :meth:`select` (served by the base class)."""
        return DegreeThresholdRule(
            threshold=self.threshold, above=self._erjs, below=self._ervs
        )
