"""Sharded multi-GPU execution — remote-edge cost per shard policy.

The Fig. 15 experiment replicates the graph on every device, which bounds
the largest servable graph by one device's memory.  This companion
experiment measures the *graph-sharded* execution mode that lifts the
bound: the graph is split into per-device node-range shards
(:class:`~repro.graph.sharded.ShardedCSRGraph`) and each walker executes
every step on the device owning its current node, paying a modeled
interconnect transfer whenever a sampled step lands on a remote shard.

For every dataset the experiment runs the same query batch replicated and
sharded (both shard policies) on four devices and reports

* the walked remote-edge ratio per shard policy — the fraction of steps
  that crossed a shard boundary, the quantity the partitioning policy is
  trying to minimise;
* the communication share of the total sharded work (modeled interconnect
  time over compute-plus-communication); and
* the plan negotiation outcome for a fleet whose per-device memory is too
  small for the whole graph (the scenario the replicated design cannot
  express): ``negotiate_plan`` must select ``sharded`` and record why.

Walks, counters and per-query base times are bit-identical between the
modes (the parity suites enforce it; the table re-checks per row), so every
difference in the table is attributable to the placement.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.bench.config import ExperimentConfig
from repro.bench.runner import prepare_graph, scaled_device_for
from repro.bench.tables import format_table
from repro.core.config import FlexiWalkerConfig
from repro.graph.sharded import SHARD_POLICIES, ShardedCSRGraph
from repro.service import DeviceFleet, WalkService
from repro.walks.registry import make_workload
from repro.walks.state import make_queries

WORKLOAD = "node2vec"
DATASETS = ("YT", "CP", "EU", "AB", "SK")
NUM_DEVICES = 4


def run_experiment(config: ExperimentConfig | None = None) -> dict:
    """Measure the sharded mode against the replicated baseline."""
    config = config or ExperimentConfig.quick()
    datasets = [d for d in DATASETS if d in config.datasets] or list(DATASETS[:2])
    rows: list[dict] = []

    for dataset in datasets:
        graph = prepare_graph(dataset, WORKLOAD, weights="uniform")
        queries = make_queries(
            graph.num_nodes,
            walk_length=config.walk_length,
            num_queries=min(config.num_queries, graph.num_nodes),
            seed=config.seed,
        )
        device = scaled_device_for("gpu", len(queries), config.waves)
        service = WalkService(graph, fleet=DeviceFleet(device, NUM_DEVICES))
        session = service.session(
            make_workload(WORKLOAD), FlexiWalkerConfig(device=device, seed=config.seed)
        )
        replicated = session.engine.with_devices(NUM_DEVICES, "hash").run(queries)

        # Negotiation check: a fleet whose devices cannot hold the whole
        # graph must be offered the sharded plan (reasons recorded).
        footprint = graph.memory_footprint_bytes()
        small = dataclasses.replace(device, memory_bytes=max(1, footprint // 2))
        small_service = WalkService(graph, fleet=DeviceFleet(small, NUM_DEVICES))
        plan = small_service.plan_for(
            make_workload(WORKLOAD),
            FlexiWalkerConfig(device=small, num_devices=NUM_DEVICES, seed=config.seed),
        )

        row: dict[str, object] = {
            "dataset": dataset,
            "replicated_ms": replicated.time_ms,
            "negotiated_plan": plan.graph_placement,
        }
        parity = True
        for policy in SHARD_POLICIES:
            sharded = session.engine.with_devices(
                NUM_DEVICES, graph_placement="sharded", shard_policy=policy
            ).run(queries)
            parity = parity and (
                sharded.paths == replicated.paths
                and np.array_equal(sharded.per_query_ns, replicated.per_query_ns)
                and sharded.counters.as_dict() == replicated.counters.as_dict()
            )
            decomposition = ShardedCSRGraph.build(graph, NUM_DEVICES, policy)
            row[f"remote_ratio_{policy}"] = sharded.remote_edge_ratio
            row[f"static_remote_{policy}"] = decomposition.remote_edge_fraction()
            row[f"sharded_ms_{policy}"] = sharded.time_ms
            total = sharded.kernel.total_work_ns + sharded.comm_time_ns
            row[f"comm_share_{policy}"] = (
                sharded.comm_time_ns / total if total > 0 else 0.0
            )
        row["base_parity"] = parity
        rows.append(row)

    return {
        "rows": rows,
        "config": config,
        "paper_reference": (
            "Fig. 15 companion: graph-sharded execution with remote-edge cost "
            "modeling (replicated-vs-sharded, walker migration over the "
            "interconnect)"
        ),
    }


def format_result(result: dict) -> str:
    headers = (
        ["dataset", "replicated_ms"]
        + [f"sharded_ms_{p}" for p in SHARD_POLICIES]
        + [f"remote_ratio_{p}" for p in SHARD_POLICIES]
        + [f"comm_share_{p}" for p in SHARD_POLICIES]
        + ["negotiated_plan", "base_parity"]
    )
    return format_table(
        headers,
        [[row[h] for h in headers] for row in result["rows"]],
        title=(
            "Sharded multi-GPU execution — makespan, walked remote-edge ratio "
            f"and communication share ({NUM_DEVICES} devices)"
        ),
        float_format="{:.3f}",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_result(run_experiment()))


if __name__ == "__main__":  # pragma: no cover
    main()
