#!/usr/bin/env python
"""CI perf-regression gate for the walk-engine microbenchmark.

Compares a freshly measured ``bench_engine.py`` report against the committed
``BENCH_engine.json`` baseline and fails (exit code 1) when any workload
entry's batched-over-scalar speedup dropped by more than the allowed fraction
— the backstop that keeps the vectorised hot path from silently regressing
toward the interpreter.  Also re-checks every entry's simulated-time parity
flag: a speedup obtained by breaking simulation equivalence is not a speedup.

Entries that report a walked ``remote_edge_ratio`` (the sharded placement)
are additionally gated on locality: the ratio may not regress more than an
absolute margin above the committed baseline, so a partitioner or
ghost-cache change that silently makes walkers migrate more gets caught
even when wall-clock numbers still look fine.

Entries that report a ``p99_latency_ticks`` (the continuous-batching serving
entry) are additionally gated on tail latency: the p99 ticket latency at the
top load scale may not rise more than the allowed fraction above the
committed baseline.  The metric is counted in scheduler supersteps — a
simulation-clock number, deterministic for a given seed and load shape — so
a rise means an admission-policy or fusion change actually delayed walks,
not that the host was busy.

Entries that report a ``recovery_overhead`` (the fault-tolerance entry) are
gated on an *absolute* ceiling: the modeled checkpoint overhead at the
runtime's default interval may not exceed ``--max-recovery-overhead``
(default 10%).  The number is pure simulation — deterministic for a given
workload — so exceeding the ceiling always means the checkpoint cost model
or the checkpoint cadence actually changed, never host noise.

Entries that report a ``delta_slowdown`` (the dynamic-graph entry) are gated
on an *absolute* ceiling: walk throughput at the top streaming-update rate
may not fall below ``1/--max-delta-slowdown`` of the static-rate throughput.
The ratio is measured host wall clock, but both sides of it come from the
same interleaved sweep, so exceeding the ceiling means the per-update work —
overlay maintenance, CSR cache repair, recompilation, scoped cache
migration — actually grew, not that the host got slower overall.

Both the multi-entry schema (``schema_version >= 2``: per-workload entries
under ``"entries"``) and the legacy single-entry schema (one top-level
``speedup``) are understood, so the gate keeps working across baseline
format migrations.

Usage::

    python scripts/bench_engine.py --output BENCH_engine.new.json
    python scripts/check_bench_regression.py \
        --baseline BENCH_engine.json --current BENCH_engine.new.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_entries(path: Path) -> dict[str, dict]:
    """Workload-keyed entries of a report, legacy reports mapped to one entry."""
    report = json.loads(path.read_text())
    entries = report.get("entries")
    if isinstance(entries, dict) and entries:
        return entries
    # Legacy single-entry schema: the whole report is the one entry.
    workload = report.get("workload", "default")
    return {workload: report}


def entry_speedup(path: Path, name: str, entry: dict) -> float:
    speedup = entry.get("speedup")
    if not isinstance(speedup, (int, float)) or speedup <= 0:
        raise SystemExit(f"{path}: entry {name!r} has no positive 'speedup' (got {speedup!r})")
    return float(speedup)


def entry_extras(entry: dict) -> str:
    """Informational per-entry extras (the sharded entry reports its walked
    remote-edge ratio, the serving entry its p99 ticket latency, alongside
    the gated speedup)."""
    ratio = entry.get("remote_edge_ratio")
    if isinstance(ratio, (int, float)):
        return f", remote-edge ratio {ratio:.3f}"
    p99 = entry.get("p99_latency_ticks")
    if isinstance(p99, (int, float)):
        return f", p99 latency {p99:.0f} ticks"
    overhead = entry.get("recovery_overhead")
    if isinstance(overhead, (int, float)):
        return f", checkpoint overhead {overhead:+.1%}"
    slowdown = entry.get("delta_slowdown")
    if isinstance(slowdown, (int, float)):
        return f", update slowdown {slowdown:.2f}x"
    return ""


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, default=Path("BENCH_engine.json"),
                        help="committed baseline report")
    parser.add_argument("--current", type=Path, required=True,
                        help="freshly measured report to gate")
    parser.add_argument("--max-drop", type=float, default=0.30,
                        help="allowed fractional speedup drop per entry (default: 0.30)")
    parser.add_argument("--max-remote-ratio-rise", type=float, default=0.05,
                        help="allowed absolute walked remote-edge-ratio rise above "
                             "the baseline for sharded entries (default: 0.05)")
    parser.add_argument("--max-p99-rise", type=float, default=0.25,
                        help="allowed fractional p99 ticket-latency rise above the "
                             "baseline for serving entries (default: 0.25)")
    parser.add_argument("--max-recovery-overhead", type=float, default=0.10,
                        help="absolute ceiling on the modeled checkpoint overhead "
                             "at the default interval for recovery entries "
                             "(default: 0.10)")
    parser.add_argument("--max-delta-slowdown", type=float, default=2.5,
                        help="absolute ceiling on the top-update-rate walk "
                             "throughput slowdown for dynamic-graph entries "
                             "(default: 2.5)")
    args = parser.parse_args()
    if not 0 <= args.max_drop < 1:
        parser.error("--max-drop must be in [0, 1)")
    if args.max_remote_ratio_rise < 0:
        parser.error("--max-remote-ratio-rise must be non-negative")
    if args.max_p99_rise < 0:
        parser.error("--max-p99-rise must be non-negative")
    if args.max_recovery_overhead < 0:
        parser.error("--max-recovery-overhead must be non-negative")
    if args.max_delta_slowdown <= 0:
        parser.error("--max-delta-slowdown must be positive")

    baseline = load_entries(args.baseline)
    current = load_entries(args.current)

    failed = False

    def recovery_exceeded(name: str, entry: dict) -> bool:
        """Absolute checkpoint-overhead ceiling (baseline-independent)."""
        overhead = entry.get("recovery_overhead")
        if not isinstance(overhead, (int, float)):
            return False
        if overhead > args.max_recovery_overhead:
            print(f"FAIL [{name}]: modeled checkpoint overhead at the default "
                  f"interval is {overhead:.1%}, above the "
                  f"{args.max_recovery_overhead:.0%} ceiling")
            return True
        return False

    def delta_exceeded(name: str, entry: dict) -> bool:
        """Absolute streaming-update slowdown ceiling (baseline-independent)."""
        slowdown = entry.get("delta_slowdown")
        if not isinstance(slowdown, (int, float)):
            return False
        if slowdown > args.max_delta_slowdown:
            print(f"FAIL [{name}]: walk throughput at the top update rate is "
                  f"{slowdown:.2f}x slower than static, above the "
                  f"{args.max_delta_slowdown:.2f}x ceiling")
            return True
        return False
    for name, base_entry in sorted(baseline.items()):
        base = entry_speedup(args.baseline, name, base_entry)
        cur_entry = current.get(name)
        if cur_entry is None:
            print(f"FAIL [{name}]: entry present in the baseline but missing "
                  f"from the current report")
            failed = True
            continue
        if cur_entry.get("simulated_time_parity") is not True:
            print(f"FAIL [{name}]: current report lost scalar/batched "
                  f"simulated-time parity")
            failed = True
            continue
        cur = entry_speedup(args.current, name, cur_entry)
        floor = base * (1.0 - args.max_drop)
        verdict = "ok" if cur >= floor else "REGRESSION"
        print(f"[{name}] baseline {base:.2f}x, current {cur:.2f}x "
              f"(floor {floor:.2f}x){entry_extras(cur_entry)} -> {verdict}")
        if cur < floor:
            print(f"FAIL [{name}]: batched-engine speedup dropped more than "
                  f"{args.max_drop:.0%} below the committed baseline")
            failed = True
        base_ratio = base_entry.get("remote_edge_ratio")
        cur_ratio = cur_entry.get("remote_edge_ratio")
        if isinstance(base_ratio, (int, float)) and isinstance(cur_ratio, (int, float)):
            ceiling = base_ratio + args.max_remote_ratio_rise
            if cur_ratio > ceiling:
                print(f"FAIL [{name}]: walked remote-edge ratio rose to "
                      f"{cur_ratio:.3f}, above the baseline {base_ratio:.3f} "
                      f"+ {args.max_remote_ratio_rise:.2f} locality margin")
                failed = True
        base_p99 = base_entry.get("p99_latency_ticks")
        cur_p99 = cur_entry.get("p99_latency_ticks")
        if isinstance(base_p99, (int, float)) and isinstance(cur_p99, (int, float)):
            p99_ceiling = base_p99 * (1.0 + args.max_p99_rise)
            if cur_p99 > p99_ceiling:
                print(f"FAIL [{name}]: p99 ticket latency rose to "
                      f"{cur_p99:.0f} ticks, more than {args.max_p99_rise:.0%} "
                      f"above the baseline {base_p99:.0f} ticks")
                failed = True
        if recovery_exceeded(name, cur_entry):
            failed = True
        if delta_exceeded(name, cur_entry):
            failed = True
    # Entries the baseline does not know yet (a freshly added workload) have
    # no speedup floor, but the parity backstop still applies to them — a
    # simulation-equivalence break must never ride in on a new entry.
    for name, cur_entry in sorted(current.items()):
        if name in baseline:
            continue
        if cur_entry.get("simulated_time_parity") is not True:
            print(f"FAIL [{name}]: new entry lost scalar/batched simulated-time "
                  f"parity (no baseline yet, parity still required)")
            failed = True
        elif recovery_exceeded(name, cur_entry) or delta_exceeded(name, cur_entry):
            failed = True
        else:
            cur = entry_speedup(args.current, name, cur_entry)
            print(f"[{name}] no baseline entry yet, current {cur:.2f}x "
                  f"(parity ok){entry_extras(cur_entry)} -> ok; "
                  f"refresh the baseline to gate it")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
