"""ShardedCSRGraph: builder policies, ownership lookup, memory accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.generators import barabasi_albert_graph, star_graph
from repro.graph.labels import random_edge_labels
from repro.graph.sharded import SHARD_POLICIES, ShardedCSRGraph


def skewed_graph(num_nodes: int = 50, seed: int = 7) -> CSRGraph:
    # Scale-model shape: low node ids get the highest degrees.
    return barabasi_albert_graph(num_nodes, 3, seed=seed, name="sharded-test")


class TestBuild:
    @pytest.mark.parametrize("policy", SHARD_POLICIES)
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 7])
    def test_shards_cover_every_node_and_edge_exactly_once(self, policy, num_shards):
        graph = skewed_graph()
        sharded = ShardedCSRGraph.build(graph, num_shards, policy)
        assert sharded.num_shards == num_shards
        assert sharded.owner_map.shape == (graph.num_nodes,)
        assert sum(s.num_nodes for s in sharded.shards) == graph.num_nodes
        assert sum(s.num_edges for s in sharded.shards) == graph.num_edges
        # The union of shard node sets is a partition of the node ids.
        owned = np.concatenate([s.nodes for s in sharded.shards])
        assert np.array_equal(np.sort(owned), np.arange(graph.num_nodes))
        # Reassembling the per-node slices reproduces the parent rows.
        for shard in sharded.shards:
            for local, node in enumerate(shard.nodes):
                row = slice(shard.indptr[local], shard.indptr[local + 1])
                assert np.array_equal(shard.indices[row], graph.neighbors(node))
                assert np.array_equal(
                    shard.weights[row],
                    graph.weights[graph.indptr[node]:graph.indptr[node + 1]],
                )

    @pytest.mark.parametrize("policy", SHARD_POLICIES)
    def test_local_indptr_is_rebased(self, policy):
        graph = skewed_graph()
        sharded = ShardedCSRGraph.build(graph, 3, policy)
        for shard in sharded.shards:
            assert shard.indptr[0] == 0
            assert shard.indptr[-1] == shard.num_edges
            # Each local row matches the parent's neighbour list, and
            # local_index round-trips the global ids.
            assert np.array_equal(
                shard.local_index(shard.nodes), np.arange(shard.num_nodes)
            )
            for local in range(shard.num_nodes):
                node = shard.nodes[local]
                nbrs = shard.indices[shard.indptr[local]:shard.indptr[local + 1]]
                assert np.array_equal(nbrs, graph.neighbors(node))

    def test_degree_balanced_beats_contiguous_on_skew(self):
        graph = skewed_graph(num_nodes=120)
        contiguous = ShardedCSRGraph.build(graph, 4, "contiguous")
        balanced = ShardedCSRGraph.build(graph, 4, "degree_balanced")

        def imbalance(sharded):
            counts = sharded.shard_edge_counts().astype(float)
            return counts.max() / counts.mean()

        assert imbalance(balanced) <= imbalance(contiguous)

    def test_labels_slice_along(self):
        graph = skewed_graph()
        graph = graph.with_labels(random_edge_labels(graph, num_labels=4, seed=1))
        sharded = ShardedCSRGraph.build(graph, 2, "contiguous")
        assert all(s.labels is not None for s in sharded.shards)
        assert np.array_equal(
            np.concatenate([s.labels for s in sharded.shards]), graph.labels
        )

    def test_invalid_arguments(self):
        graph = skewed_graph()
        with pytest.raises(GraphError):
            ShardedCSRGraph.build(graph, 0)
        with pytest.raises(GraphError):
            ShardedCSRGraph.build(graph, 2, policy="random")


class TestOwner:
    @pytest.mark.parametrize("policy", SHARD_POLICIES)
    def test_owner_matches_shard_ranges(self, policy):
        graph = skewed_graph()
        sharded = ShardedCSRGraph.build(graph, 4, policy)
        nodes = np.arange(graph.num_nodes)
        owners = sharded.owner(nodes)
        for shard in sharded.shards:
            mask = owners == shard.shard_id
            assert np.array_equal(np.nonzero(mask)[0], nodes[shard.owns(nodes)])

    def test_empty_shards_never_own(self):
        # More shards than nodes: the star graph has hub 0 plus leaves.
        graph = star_graph(4)
        sharded = ShardedCSRGraph.build(graph, 7, "degree_balanced")
        owners = sharded.owner(np.arange(graph.num_nodes))
        for shard in sharded.shards:
            if shard.num_nodes == 0:
                assert not np.any(owners == shard.shard_id)
        # Every node still has exactly one owner in range.
        assert owners.min() >= 0
        assert owners.max() < sharded.num_shards

    def test_owner_rejects_out_of_range_nodes(self):
        sharded = ShardedCSRGraph.build(skewed_graph(), 2)
        with pytest.raises(GraphError):
            sharded.owner(np.array([999]))


class TestMemoryAccounting:
    def test_shard_footprints_cover_the_replicated_footprint(self):
        graph = skewed_graph()
        sharded = ShardedCSRGraph.build(graph, 4, "degree_balanced")
        total = sharded.memory_footprint_bytes()
        # Sharding duplicates one indptr entry per extra shard, nothing else.
        assert total == graph.memory_footprint_bytes() + 8 * (sharded.num_shards - 1)
        assert sharded.max_shard_footprint_bytes() < graph.memory_footprint_bytes()
        assert sharded.max_shard_footprint_bytes() == max(
            s.memory_footprint_bytes() for s in sharded.shards
        )

    def test_weight_bytes_scales_like_the_parent(self):
        graph = skewed_graph()
        sharded = ShardedCSRGraph.build(graph, 2)
        delta = sharded.memory_footprint_bytes(8) - sharded.memory_footprint_bytes(1)
        assert delta == graph.num_edges * 7

    def test_describe_reports_the_decomposition(self):
        sharded = ShardedCSRGraph.build(skewed_graph(), 4, "degree_balanced")
        described = sharded.describe()
        assert described["num_shards"] == 4
        assert described["policy"] == "degree_balanced"
        assert 0.0 <= described["remote_edge_fraction"] <= 1.0
        assert described["edge_balance"] >= 1.0

    def test_remote_edge_fraction_zero_for_single_shard(self):
        sharded = ShardedCSRGraph.build(skewed_graph(), 1)
        assert sharded.remote_edge_fraction() == 0.0


class TestLocalityPolicy:
    def test_cuts_no_more_edges_than_contiguous(self):
        graph = skewed_graph(num_nodes=200)
        contiguous = ShardedCSRGraph.build(graph, 4, "contiguous")
        locality = ShardedCSRGraph.build(graph, 4, "locality")
        assert locality.remote_edge_fraction() <= contiguous.remote_edge_fraction()

    def test_respects_the_contiguous_capacity(self):
        graph = skewed_graph(num_nodes=100)
        sharded = ShardedCSRGraph.build(graph, 3, "locality")
        capacity = -(-graph.num_nodes // 3)
        assert all(s.num_nodes <= capacity for s in sharded.shards)

    def test_star_graph_keeps_the_hub_cluster_together(self):
        # Hub 0 plus 19 leaves, 2 shards of capacity 10: the streaming pass
        # places the hub first and pulls half the leaves onto its shard —
        # every leaf on that shard has a local edge to the hub.
        graph = star_graph(19)
        sharded = ShardedCSRGraph.build(graph, 2, "locality")
        hub_shard = sharded.shards[int(sharded.owner_map[0])]
        assert 0 in hub_shard.nodes
        assert hub_shard.num_nodes == 10


class TestGhostCache:
    def test_ghosts_only_remote_nodes_within_budget(self):
        graph = skewed_graph(num_nodes=80)
        sharded = ShardedCSRGraph.build(graph, 4, "contiguous")
        ghost = sharded.ghost_cache(budget_bytes=2_000)
        for s, _shard in enumerate(sharded.shards):
            ghosted = np.nonzero(ghost.mask[s])[0]
            # Never ghost an owned node.
            assert not np.any(sharded.owner_map[ghosted] == s)
            assert ghost.cached_nodes[s] == ghosted.size
            assert 0 <= ghost.cached_bytes[s] <= 2_000

    def test_hottest_remote_nodes_are_cached_first(self):
        graph = skewed_graph(num_nodes=80)
        sharded = ShardedCSRGraph.build(graph, 4, "contiguous")
        ghost = sharded.ghost_cache(budget_bytes=1_500)
        degrees = graph.indptr[1:] - graph.indptr[:-1]
        for s in range(4):
            ghosted = np.nonzero(ghost.mask[s])[0]
            if ghosted.size == 0:
                continue
            floor = degrees[ghosted].min()
            remote = np.nonzero(sharded.owner_map != s)[0]
            skipped = remote[~ghost.mask[s, remote]]
            # Everything skipped is no hotter than the coldest cached node.
            assert skipped.size == 0 or degrees[skipped].max() <= floor

    def test_zero_budget_caches_nothing(self):
        sharded = ShardedCSRGraph.build(skewed_graph(), 2)
        ghost = sharded.ghost_cache(budget_bytes=0)
        assert not ghost.mask.any()
        assert ghost.cached_nodes.sum() == 0

    def test_covers_matches_the_mask(self):
        sharded = ShardedCSRGraph.build(skewed_graph(), 2)
        ghost = sharded.ghost_cache(budget_bytes=5_000)
        shard_ids = np.array([0, 0, 1, 1])
        nodes = np.array([0, 30, 0, 30])
        assert np.array_equal(
            ghost.covers(shard_ids, nodes), ghost.mask[shard_ids, nodes]
        )

    def test_labels_widen_the_modeled_node_size(self):
        graph = skewed_graph()
        labelled = graph.with_labels(random_edge_labels(graph, num_labels=4, seed=1))
        plain_cache = ShardedCSRGraph.build(graph, 2).ghost_cache(3_000)
        label_cache = ShardedCSRGraph.build(labelled, 2).ghost_cache(3_000)
        assert label_cache.cached_nodes.sum() <= plain_cache.cached_nodes.sum()
