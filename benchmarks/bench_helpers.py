"""Helpers shared by the pytest-benchmark wrappers."""

from __future__ import annotations

import sys
from pathlib import Path

try:  # pragma: no cover - trivial import guard
    import repro  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def run_once(benchmark, experiment, config):
    """Run an experiment module exactly once under pytest-benchmark.

    The experiments are aggregate sweeps (many kernels, many datasets), so
    statistical repetition happens inside them rather than around them; the
    rendered paper-style table is echoed so a benchmark run doubles as a
    reproduction report.
    """
    result = benchmark.pedantic(experiment.run_experiment, args=(config,), rounds=1, iterations=1)
    print()
    print(experiment.format_result(result))
    return result
