"""Generated preprocessing: per-node aggregates of edge-indexed arrays.

The code generator (Fig. 9d) emits a ``preprocess()`` routine that allocates
``<array>_MAX`` and ``<array>_SUM`` companions for every edge-indexed array
the analyser found, and fills them with lightweight GPU reduction kernels.
eRJS's bound estimation then needs a *single* memory access per step instead
of scanning the whole neighbour list (Fig. 5b), and the runtime cost model
gets its weight-sum estimate the same way.

Aggregates are computed per source node over its out-edges with
``np.maximum.reduceat`` / ``np.add.reduceat``; the simulated cost of that
pass (one coalesced sweep over all edges per aggregate) is reported so the
Table 3 overhead study can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CompilerError
from repro.graph.csr import CSRGraph
from repro.gpusim.counters import CostCounters
from repro.gpusim.device import DeviceSpec


@dataclass
class PreprocessResult:
    """Per-node aggregates produced by the generated preprocessing kernels.

    ``aggregates`` maps ``"<array>_max"`` / ``"<array>_sum"`` /
    ``"<array>_mean"`` to arrays of length ``num_nodes``; nodes without
    out-edges hold 0.  ``counters`` and ``simulated_time_ns`` record the cost
    of the preprocessing pass for the overhead analysis (Table 3).
    """

    aggregates: dict[str, np.ndarray] = field(default_factory=dict)
    counters: CostCounters = field(default_factory=CostCounters)
    simulated_time_ns: float = 0.0

    def node_max(self, array: str, node: int) -> float:
        return float(self.aggregates[f"{array}_max"][node])

    def node_sum(self, array: str, node: int) -> float:
        return float(self.aggregates[f"{array}_sum"][node])

    def node_mean(self, array: str, node: int) -> float:
        return float(self.aggregates[f"{array}_mean"][node])

    def has_array(self, array: str) -> bool:
        return f"{array}_max" in self.aggregates


def _edge_array(graph: CSRGraph, array: str) -> np.ndarray:
    if array == "weights":
        return np.asarray(graph.weights, dtype=np.float64)
    if array == "labels":
        if graph.labels is None:
            raise CompilerError("workload reads edge labels but the graph has none")
        return np.asarray(graph.labels, dtype=np.float64)
    raise CompilerError(f"no per-node aggregation is defined for graph.{array}")


def preprocess_graph(
    graph: CSRGraph,
    arrays: tuple[str, ...] = ("weights",),
    device: DeviceSpec | None = None,
) -> PreprocessResult:
    """Compute per-node MAX/SUM/MEAN aggregates for the requested edge arrays."""
    result = PreprocessResult()
    degrees = graph.degrees()
    starts = graph.indptr[:-1]
    nonempty = degrees > 0

    for array in dict.fromkeys(arrays):
        values = _edge_array(graph, array)
        max_agg = np.zeros(graph.num_nodes, dtype=np.float64)
        sum_agg = np.zeros(graph.num_nodes, dtype=np.float64)
        if graph.num_edges:
            # reduceat on the CSR row starts gives one aggregate per node; rows
            # of empty nodes would alias the next row, so they are masked out.
            reduce_starts = np.minimum(starts, max(graph.num_edges - 1, 0))
            max_all = np.maximum.reduceat(values, reduce_starts)
            sum_all = np.add.reduceat(values, reduce_starts)
            max_agg[nonempty] = max_all[nonempty]
            sum_agg[nonempty] = sum_all[nonempty]
        mean_agg = np.divide(sum_agg, degrees, out=np.zeros_like(sum_agg), where=nonempty)
        result.aggregates[f"{array}_max"] = max_agg
        result.aggregates[f"{array}_sum"] = sum_agg
        result.aggregates[f"{array}_mean"] = mean_agg

        # Each aggregate pair costs one coalesced sweep over the edge array
        # feeding a per-node segmented reduction.
        result.counters.coalesced_accesses += graph.num_edges
        result.counters.reduction_elements += 2 * graph.num_edges
        result.counters.table_builds += 2 * graph.num_nodes

    if device is not None:
        # The preprocessing kernel is embarrassingly parallel over nodes.
        result.simulated_time_ns = device.lane_time_ns(result.counters) / max(
            1, min(device.parallel_lanes, graph.num_nodes)
        )
    return result
