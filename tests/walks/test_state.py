"""Tests for walker and query state."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WalkSpecError
from repro.walks.state import WalkerState, WalkQuery, make_queries


class TestWalkQuery:
    def test_valid_query(self):
        q = WalkQuery(query_id=0, start_node=3, max_length=10)
        assert q.start_node == 3

    def test_rejects_zero_length(self):
        with pytest.raises(WalkSpecError):
            WalkQuery(query_id=0, start_node=0, max_length=0)

    def test_rejects_negative_start(self):
        with pytest.raises(WalkSpecError):
            WalkQuery(query_id=0, start_node=-1, max_length=5)


class TestWalkerState:
    def test_start_positions_walker_on_start_node(self):
        state = WalkerState.start(WalkQuery(0, 7, 5))
        assert state.current_node == 7
        assert state.prev_node == -1
        assert state.step == 0
        assert state.path == [7]

    def test_advance_updates_everything(self):
        state = WalkerState.start(WalkQuery(0, 7, 5))
        state.advance(3)
        assert state.current_node == 3
        assert state.prev_node == 7
        assert state.step == 1
        assert state.path == [7, 3]
        assert state.walk_length == 1

    def test_finished_after_max_length_steps(self):
        state = WalkerState.start(WalkQuery(0, 0, 2))
        assert not state.finished
        state.advance(1)
        state.advance(0)
        assert state.finished

    def test_params_are_per_walker(self):
        a = WalkerState.start(WalkQuery(0, 0, 2))
        b = WalkerState.start(WalkQuery(1, 0, 2))
        a.params["x"] = 1
        assert "x" not in b.params


class TestMakeQueries:
    def test_one_query_per_node_by_default(self):
        queries = make_queries(10, walk_length=5)
        assert len(queries) == 10
        assert [q.start_node for q in queries] == list(range(10))

    def test_subsampling(self):
        queries = make_queries(100, walk_length=5, num_queries=10, seed=1)
        assert len(queries) == 10
        assert len({q.start_node for q in queries}) == 10

    def test_subsampling_deterministic(self):
        a = make_queries(100, walk_length=5, num_queries=10, seed=1)
        b = make_queries(100, walk_length=5, num_queries=10, seed=1)
        assert [q.start_node for q in a] == [q.start_node for q in b]

    def test_explicit_start_nodes(self):
        queries = make_queries(10, walk_length=3, start_nodes=np.array([4, 2]))
        assert [q.start_node for q in queries] == [4, 2]

    def test_query_ids_are_sequential(self):
        queries = make_queries(5, walk_length=2)
        assert [q.query_id for q in queries] == [0, 1, 2, 3, 4]

    def test_num_queries_larger_than_nodes_uses_all_nodes(self):
        assert len(make_queries(5, walk_length=2, num_queries=50)) == 5

    def test_invalid_start_nodes_rejected(self):
        with pytest.raises(WalkSpecError):
            make_queries(5, walk_length=2, start_nodes=np.array([7]))

    def test_empty_graph_rejected(self):
        with pytest.raises(WalkSpecError):
            make_queries(0, walk_length=2)
