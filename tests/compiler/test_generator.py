"""Tests for the code generator (get_weight_max / get_weight_sum helpers)."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.compiler.flags import BoundGranularity
from repro.compiler.generator import compile_workload
from repro.errors import CompilerWarning
from repro.graph.csr import CSRGraph
from repro.gpusim.device import A6000
from repro.walks.metapath import MetaPathSpec
from repro.walks.node2vec import Node2VecSpec, UnweightedNode2VecSpec
from repro.walks.second_order_pr import SecondOrderPRSpec
from repro.walks.spec import WalkSpec
from repro.walks.state import WalkerState

from tests.conftest import make_state

PER_STEP_SPECS = [Node2VecSpec(), MetaPathSpec(), SecondOrderPRSpec()]


class TestBoundSoundness:
    """The generated bound must never fall below the true maximum weight."""

    @pytest.mark.parametrize("spec", PER_STEP_SPECS, ids=lambda s: s.name)
    def test_bound_upper_bounds_true_max_everywhere(self, spec, small_graph):
        compiled = compile_workload(spec, small_graph)
        assert compiled.supported
        for node in range(0, small_graph.num_nodes, 3):
            if small_graph.degree(node) == 0:
                continue
            prev_candidates = small_graph.neighbors(node)
            prev = int(prev_candidates[0]) if prev_candidates.size else None
            state = make_state(small_graph, node=node, prev=prev, step=1)
            bound = compiled.bound_hint(small_graph, state)
            true_max = spec.transition_weights(small_graph, state).max()
            assert bound is not None
            assert bound >= true_max - 1e-9

    def test_unweighted_node2vec_bound_is_constant_two(self, small_graph):
        compiled = compile_workload(UnweightedNode2VecSpec(a=2.0, b=0.5), small_graph)
        state = make_state(small_graph, node=0)
        assert compiled.granularity is BoundGranularity.PER_KERNEL
        assert compiled.bound_hint(small_graph, state) == pytest.approx(2.0)

    def test_per_kernel_bound_cached(self, small_graph):
        compiled = compile_workload(UnweightedNode2VecSpec(), small_graph)
        state = make_state(small_graph, node=0)
        first = compiled.bound_hint(small_graph, state)
        second = compiled.bound_hint(small_graph, make_state(small_graph, node=1))
        assert first == second


class TestSumEstimate:
    @pytest.mark.parametrize("spec", PER_STEP_SPECS, ids=lambda s: s.name)
    def test_sum_estimate_positive_and_finite(self, spec, small_graph):
        compiled = compile_workload(spec, small_graph)
        prev = int(small_graph.neighbors(0)[0])
        state = make_state(small_graph, node=0, prev=prev, step=1)
        estimate = compiled.sum_hint(small_graph, state)
        assert estimate is not None
        assert np.isfinite(estimate)
        assert estimate > 0

    def test_sum_estimate_within_factor_of_truth_for_node2vec(self, small_graph):
        spec = Node2VecSpec(a=2.0, b=0.5)
        compiled = compile_workload(spec, small_graph)
        prev = int(small_graph.neighbors(0)[0])
        state = make_state(small_graph, node=0, prev=prev, step=1)
        estimate = compiled.sum_hint(small_graph, state)
        truth = spec.transition_weights(small_graph, state).sum()
        assert truth / 5 <= estimate <= truth * 5

    def test_per_kernel_sum_scales_with_degree(self, small_graph):
        compiled = compile_workload(UnweightedNode2VecSpec(), small_graph)
        degrees = small_graph.degrees()
        hi = int(np.argmax(degrees))
        lo = int(np.argmin(degrees[degrees > 0])) if np.any(degrees > 0) else hi
        hi_est = compiled.sum_hint(small_graph, make_state(small_graph, node=hi))
        lo_node = int(np.nonzero(degrees == degrees[degrees > 0].min())[0][0])
        lo_est = compiled.sum_hint(small_graph, make_state(small_graph, node=lo_node))
        assert hi_est >= lo_est


class TestPreprocessingIntegration:
    def test_per_step_workloads_get_preprocessed_aggregates(self, small_graph):
        compiled = compile_workload(Node2VecSpec(), small_graph)
        assert compiled.preprocessed is not None
        assert compiled.preprocessed.has_array("weights")

    def test_per_kernel_workloads_skip_preprocessing(self, small_graph):
        compiled = compile_workload(UnweightedNode2VecSpec(), small_graph)
        assert compiled.preprocessed is None
        assert compiled.preprocessing_time_ns == 0.0

    def test_preprocessing_time_reported_with_device(self, small_graph):
        compiled = compile_workload(Node2VecSpec(), small_graph, device=A6000)
        assert compiled.preprocessing_time_ns > 0


class _LoopSpec(WalkSpec):
    name = "loop"

    def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
        h_e = graph.weights[edge]
        total = 0.0
        for _ in range(3):
            total += h_e
        return total


class TestFallback:
    def test_unsupported_workload_warns_and_disables_helpers(self, small_graph):
        with pytest.warns(CompilerWarning):
            compiled = compile_workload(_LoopSpec(), small_graph)
        assert not compiled.supported
        state = make_state(small_graph, node=0)
        assert compiled.bound_hint(small_graph, state) is None
        assert compiled.sum_hint(small_graph, state) is None

    def test_supported_workload_does_not_warn(self, small_graph):
        with warnings.catch_warnings():
            warnings.simplefilter("error", CompilerWarning)
            compiled = compile_workload(Node2VecSpec(), small_graph)
        assert compiled.supported


class TestVectorisedNodeHints:
    """hint_nodes must agree with per-node bound_hint / sum_hint exactly."""

    @pytest.mark.parametrize(
        "spec",
        [Node2VecSpec(), UnweightedNode2VecSpec(), MetaPathSpec()],
        ids=lambda s: s.name,
    )
    def test_hint_nodes_matches_scalar_helpers(self, spec, small_graph):
        compiled = compile_workload(spec, small_graph)
        assert compiled.hints_node_only
        nodes = np.arange(small_graph.num_nodes, dtype=np.int64)
        bounds, sums = compiled.hint_nodes(small_graph, nodes)
        for node in nodes:
            state = make_state(small_graph, node=int(node))
            bound = compiled.bound_hint(small_graph, state)
            total = compiled.sum_hint(small_graph, state)
            if bound is None:
                assert np.isnan(bounds[node])
            else:
                assert bounds[node] == bound
            if total is None:
                assert np.isnan(sums[node])
            else:
                assert sums[node] == total

    def test_reads_state_classification(self, small_graph):
        from repro.walks.deepwalk import DeepWalkSpec

        assert not compile_workload(DeepWalkSpec(), small_graph).analysis.reads_state
        assert compile_workload(Node2VecSpec(), small_graph).analysis.reads_state

    def test_vectorisation_unsafe_expressions_fall_back_per_node(self, small_graph):
        """Builtin max on an array raises; hint_nodes must fall back, not drop."""

        class ClampedSpec(WalkSpec):
            name = "clamped"

            def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
                h = graph.weights[edge]
                return max(h, 0.5)

        spec = ClampedSpec()
        compiled = compile_workload(spec, small_graph)
        assert compiled.supported and compiled.hints_node_only
        nodes = np.arange(small_graph.num_nodes, dtype=np.int64)
        bounds, sums = compiled.hint_nodes(small_graph, nodes)
        saw_real_value = False
        for node in nodes:
            state = make_state(small_graph, node=int(node))
            bound = compiled.bound_hint(small_graph, state)
            total = compiled.sum_hint(small_graph, state)
            if bound is None:
                assert np.isnan(bounds[node])
            else:
                assert bounds[node] == bound
                saw_real_value = True
            if total is None:
                assert np.isnan(sums[node])
            else:
                assert sums[node] == total
        # The scalar helpers do produce estimates here, so a silent all-NaN
        # vectorised result would be the parity bug this test guards against.
        assert saw_real_value
