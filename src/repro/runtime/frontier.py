"""The batched, step-synchronous walk execution loop (frontier engine).

This is the execution shape real GPU walk frameworks use (FlowWalker's and
C-SAW's frontier kernels): instead of interpreting one query at a time, every
*superstep* gathers all still-active walkers, evaluates the per-walker kernel
selection once, partitions the frontier by chosen kernel and executes each
partition through one vectorised ``sample_batch`` call.

The loop is simulation-equivalent to :meth:`WalkEngine._run_scalar` by
construction, not by accident:

* randomness — every walker owns the same counter-based stream in both modes
  and the batch kernels consume the same counter ranges, so the sampled paths
  are identical;
* counters — each walker's per-step operation counts land in its own
  :class:`~repro.gpusim.counters.CounterBatch` slot, and every superstep adds
  exactly one priced float per active walker to ``per_query_ns`` (the same
  accumulation order as the scalar loop), so counter totals and simulated
  timings match;
* termination — both modes consult the same dead-end rules from
  :mod:`repro.sampling.base`.

The one documented exception is :class:`~repro.runtime.selector.RandomSelector`,
whose shared-generator coin flips cannot be replayed step-synchronously.

Multi-device execution reuses the same loop: :func:`run_multi_device` fuses
the frontiers of every simulated device into **one** shared superstep
(per-device bookkeeping kept through device-id slots), so a D-device run
costs one Python loop instead of D — the serial per-device composition is
kept as :func:`run_multi_device_serial` for the scalar mode and as the
executable specification the fused loop is property-tested against.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SimulationError
from repro.gpusim.counters import CostCounters, CounterBatch
from repro.gpusim.executor import KernelExecutor, KernelResult
from repro.rng.streams import StreamPool
from repro.runtime.scheduler import DynamicQueryQueue, validate_queries
from repro.sampling.batch import BatchStepContext, BufferArena
from repro.walks.state import WalkerFrontier, WalkQuery

if TYPE_CHECKING:  # pragma: no cover - engine imports frontier
    from repro.runtime.engine import WalkEngine, WalkRunResult
    from repro.runtime.profiler import ProfileResult


class NodeHintTables:
    """Lazily-filled per-node bound/sum hint tables (node-only workloads).

    When ``compiled.hints_node_only`` the compiler helpers are a pure
    function of the current node, so their values can be cached per node and
    shared by every walker that ever visits it.  Entries are computed on
    first visit rather than eagerly for the whole graph — a sparse-query run
    on a large graph must not pay an O(num_nodes) startup the scalar engine
    would never pay.  ``NaN`` is the array form of the scalar ``None`` ("no
    estimate"), so a separate mask tracks which entries are populated.

    Pending nodes are batch-evaluated through
    :meth:`~repro.compiler.generator.CompiledWorkload.hint_nodes`, which
    replays the generated helpers with per-node aggregate *arrays* bound in
    place of scalars (falling back to exact per-node evaluation whenever the
    vectorised replay is unsafe).
    """

    def __init__(self, compiled, graph) -> None:
        self._compiled = compiled
        self._graph = graph
        n = graph.num_nodes
        self.bounds = np.full(n, np.nan, dtype=np.float64)
        self.sums = np.full(n, np.nan, dtype=np.float64)
        self._computed = np.zeros(n, dtype=bool)

    def rebind(self, graph, touched_nodes: np.ndarray, compiled=None) -> None:
        """Scoped invalidation contract: follow a graph delta in place.

        Called by the versioned invalidation layer
        (:mod:`repro.graph.invalidation`).  The per-node arrays are
        fixed-size, so the repair is a pure scoped clear: touched rows go
        back to "not computed" and refill lazily; untouched rows — and the
        ``bounds`` / ``sums`` arrays themselves — keep their object identity.
        ``compiled`` must be the new version's compiled workload whenever the
        workload preprocesses the graph (its per-node aggregates are
        graph-derived); ``None`` keeps the current one.
        """
        touched = np.asarray(touched_nodes, dtype=np.int64)
        self._graph = graph
        if compiled is not None:
            self._compiled = compiled
        self.bounds[touched] = np.nan
        self.sums[touched] = np.nan
        self._computed[touched] = False

    def lookup(self, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Hints for the given nodes, evaluating missing entries on demand."""
        pending = np.unique(nodes[~self._computed[nodes]])
        if pending.size:
            bounds, sums = self._compiled.hint_nodes(self._graph, pending)
            self.bounds[pending] = bounds
            self.sums[pending] = sums
            self._computed[pending] = True
        return self.bounds[nodes], self.sums[nodes]


#: Per-superstep hook of the fused multi-device loop: receives the active
#: frontier indices and the superstep's CounterBatch so the caller can fold
#: per-walker counts into per-device aggregates.
SuperstepFold = Callable[[np.ndarray, CounterBatch], None]


@dataclass(frozen=True)
class SuperstepReport:
    """What one superstep of the frontier loop did.

    Yielded by :func:`iter_supersteps` after each superstep's accounting has
    already landed in the caller-supplied ``per_query_ns`` / ``aggregate`` /
    ``usage`` structures, so observers (the fused multi-device fold, the
    streaming session layer) only need the per-superstep views.

    Attributes
    ----------
    active:
        Frontier indices that executed a walk step this superstep (dead-end
        walkers are excluded — they terminate without charging a step).
    counters:
        The superstep's :class:`~repro.gpusim.counters.CounterBatch`; slot
        ``j`` holds the counts charged to walker ``active[j]``.
    finished:
        Frontier indices whose walks completed during this superstep, for
        any reason: dead end, all-zero transition weights, or the walk
        reaching its maximum length.  Sorted ascending.
    nodes:
        Node walker ``active[j]`` occupied when it executed this
        superstep's step (captured *before* the frontier advanced) — what
        the sharded accounting attributes work and migrations by.
    step_ns:
        The priced lane time of each active walker's step — the exact
        values already accumulated into ``per_query_ns``, exposed so
        observers do not re-price the counter batch.
    sampler_names:
        Names of the kernels the selector chose this superstep, in the
        selector's partition order (empty for dead-end-only reports).
    assignment:
        ``assignment[j]`` is the index into ``sampler_names`` of the kernel
        walker ``active[j]`` executed — what lets the continuous-batching
        scheduler split the fused ``sampler_usage`` back out per session
        exactly.  ``None`` for dead-end-only reports.
    """

    active: np.ndarray
    counters: CounterBatch
    finished: np.ndarray
    nodes: np.ndarray
    step_ns: np.ndarray
    sampler_names: tuple[str, ...] = ()
    assignment: np.ndarray | None = None

    @property
    def steps(self) -> int:
        """Walker-steps executed this superstep (one per active walker)."""
        return int(self.active.size)


def _drive_supersteps(
    engine: WalkEngine,
    frontier: WalkerFrontier,
    streams,
    per_query_ns: np.ndarray,
    aggregate: CostCounters,
    usage: dict[str, int],
    fold: SuperstepFold | None = None,
) -> int:
    """Advance the whole frontier step-synchronously until every walk ends.

    The shared core of :func:`run_batched` and the fused multi-device loop:
    a thin consumer of :func:`iter_supersteps` that applies ``fold`` — when
    given — to every superstep's (active walkers, counter batch) pair for
    per-device bookkeeping.  Returns the number of walker-steps executed.
    """
    total_steps = 0
    reports = iter_supersteps(
        engine, frontier, streams, per_query_ns, aggregate, usage, track_finished=False
    )
    for report in reports:
        total_steps += report.steps
        if fold is not None:
            fold(report.active, report.counters)
    return total_steps


#: Shared empty finished-set for untracked supersteps.
_NO_FINISHED = np.zeros(0, dtype=np.int64)


class FrontierRun:
    """Growable execution state for a frontier that admits walkers mid-flight.

    The continuous-batching scheduler cannot hand :func:`iter_supersteps` a
    fixed ``(frontier, streams, per_query_ns)`` triple: admission at a
    superstep boundary grows all three.  A ``FrontierRun`` owns the triple
    and is passed to :func:`iter_supersteps` as ``run=`` — the generator
    re-reads the triple at the top of every superstep, so an :meth:`admit`
    between two ``next()`` calls takes effect on the very next superstep.

    Admission charges each new walker's queue fetch (one atomic, priced
    per-slot) exactly as the one-shot launch paths do; because
    :meth:`~repro.gpusim.device.DeviceSpec.lane_times_ns` prices each slot
    independently of batch size, splitting one launch into many admissions
    cannot change any walker's accounting.
    """

    __slots__ = ("engine", "frontier", "pool", "streams", "per_query_ns")

    def __init__(self, engine: WalkEngine) -> None:
        from repro.rng.streams import AdoptedStreamPool

        self.engine = engine
        self.frontier = WalkerFrontier([])
        self.pool = AdoptedStreamPool()
        self.streams = self.pool.batch_all()
        self.per_query_ns = np.zeros(0, dtype=np.float64)

    def __len__(self) -> int:
        return len(self.frontier)

    def admit(self, queries: list[WalkQuery], seed: int) -> tuple[np.ndarray, np.ndarray]:
        """Admit queries whose streams derive from ``StreamPool(seed)``.

        Returns the admitted walkers' frontier positions and their priced
        fetch times (already accumulated into ``per_query_ns``).
        """
        positions = self.frontier.extend(queries)
        self.pool.adopt(seed, [q.query_id for q in queries])
        self.streams = self.pool.batch_all()
        fetch = CounterBatch(len(queries), bytes_per_weight=self.engine.weight_bytes)
        fetch.atomic_ops += 1
        fetch_ns = self.engine.device.lane_times_ns(fetch)
        self.per_query_ns = np.concatenate([self.per_query_ns, fetch_ns])
        return positions, fetch_ns


def iter_supersteps(
    engine: WalkEngine,
    frontier: WalkerFrontier,
    streams,
    per_query_ns: np.ndarray,
    aggregate: CostCounters,
    usage: dict[str, int],
    track_finished: bool = True,
    run: FrontierRun | None = None,
):
    """Step-synchronous frontier loop, one :class:`SuperstepReport` at a time.

    The generator form of the batched execution core: each ``next()``
    advances every still-active walker by one step, lands the per-walker
    accounting in ``per_query_ns`` (indexed by frontier position) and
    ``aggregate``, and yields a :class:`SuperstepReport` describing what
    happened — which walkers stepped, what they charged, and whose walks
    completed.  The streaming service layer drives this directly to emit
    per-superstep :class:`~repro.service.WalkChunk`s; :func:`_drive_supersteps`
    wraps it for the one-shot paths.

    Because every walker owns a counter-based random stream keyed by its
    query id and every walker's counts land in its own slot, suspending the
    generator between supersteps (or splitting a batch across several
    frontiers) cannot change any walk, count or simulated time.

    ``track_finished=False`` skips the per-superstep completion bookkeeping
    (reports carry an empty ``finished``) — used by the one-shot drivers,
    which never read it, to keep the benchmarked hot path free of it.

    ``run`` enables mid-flight frontier injection: when a
    :class:`FrontierRun` is given, the ``(frontier, streams, per_query_ns)``
    triple is re-read from it at the top of every superstep, so walkers
    admitted between ``next()`` calls join the very next superstep without
    a new generator.  The generator still returns when no walker is active
    — the scheduler recreates it after the next admission (all state lives
    on the run and the shared engine caches, so recreation is cheap).
    """
    graph, spec, device = engine.graph, engine.spec, engine.device

    hints_available = engine.compiled is not None and engine.compiled.supported
    hint_tables: NodeHintTables | None = None
    if hints_available and engine.compiled.hints_node_only:
        hint_tables = engine._node_hint_tables()
    cache = engine._transition_cache()
    arena = BufferArena()

    while True:
        if run is not None:
            frontier = run.frontier
            streams = run.streams
            per_query_ns = run.per_query_ns
        active = frontier.active_indices()
        if active.size == 0:
            return
        # Consolidated dead-end rule, vectorised (see sampling.base.is_dead_end).
        current = frontier.current[active]
        degrees = graph.indptr[current + 1] - graph.indptr[current]
        dead = degrees == 0
        dead_finished = active[dead]
        if dead.any():
            frontier.terminate(dead_finished)
            active = active[~dead]
            if active.size == 0:
                # Every remaining walker hit a dead end: report the
                # completions without charging a step.
                yield SuperstepReport(
                    active=active,
                    counters=CounterBatch(0, bytes_per_weight=engine.weight_bytes),
                    finished=dead_finished if track_finished else _NO_FINISHED,
                    nodes=active,
                    step_ns=np.zeros(0, dtype=np.float64),
                )
                return
        k = active.size
        # The nodes the steps execute on, captured before the frontier
        # advances (fancy indexing copies, so the later in-place advance
        # cannot alias this).
        step_nodes = frontier.current[active]

        counters = CounterBatch(k, bytes_per_weight=engine.weight_bytes)
        bound_hints = sum_hints = None
        if hints_available:
            if hint_tables is not None:
                bound_hints, sum_hints = hint_tables.lookup(step_nodes)
            else:
                # State-dependent hints: evaluate the helpers per walker,
                # exactly like the scalar engine does per step.
                bound_hints = np.full(k, np.nan, dtype=np.float64)
                sum_hints = np.full(k, np.nan, dtype=np.float64)
                for j, walker in enumerate(active):
                    state = frontier.state_view(int(walker))
                    bound = engine.compiled.bound_hint(graph, state)
                    if bound is not None:
                        bound_hints[j] = bound
                    total = engine.compiled.sum_hint(graph, state)
                    if total is not None:
                        sum_hints[j] = total
            if engine.selection_overhead:
                # Reading the two preprocessed aggregates feeding the
                # estimation helpers, plus their arithmetic.
                counters.coalesced_accesses += 2
                counters.weight_computations += 2

        ctx = BatchStepContext(
            graph=graph,
            spec=spec,
            frontier=frontier,
            walkers=active,
            rng=streams.subset(active),
            counters=counters,
            slots=arena.arange(k),
            bound_hints=bound_hints,
            sum_hints=sum_hints,
            warp_width=engine.warp_width,
            transition_cache=cache,
            arena=arena,
        )
        samplers, assignment = engine.selector.select_batch(ctx)

        next_nodes = np.full(k, -1, dtype=np.int64)
        for position, sampler in enumerate(samplers):
            part = np.nonzero(assignment == position)[0]
            if part.size == 0:
                continue
            sub = ctx.subset(part)
            if engine.warp_switch_overhead and sampler.processing_unit == "warp":
                # The concurrent kernel votes (__ballot_sync) and shares the
                # query parameters (__shfl_sync) before the warp switches
                # into the cooperative mode.
                sub.charge("warp_syncs", 1)
            next_nodes[part] = sampler.sample_batch(sub)
            usage[sampler.name] = usage.get(sampler.name, 0) + int(part.size)
            if engine.step_overhead is not None:
                _apply_step_overhead(engine, ctx, part, sampler)

        step_ns = device.lane_times_ns(counters)
        per_query_ns[active] += step_ns
        aggregate.merge(counters.totals())

        advancing = next_nodes >= 0
        if not advancing.all():
            frontier.terminate(active[~advancing])
        moving = active[advancing]
        if moving.size:
            targets = next_nodes[advancing]
            spec.update_batch(graph, frontier, moving, targets)
            frontier.advance(moving, targets)
        # Walks complete by sampling failure (all-zero weights), by reaching
        # their maximum length, or — reported above the step charge — by
        # hitting a dead end.
        if track_finished:
            exhausted = moving[frontier.steps[moving] >= frontier.max_lengths[moving]]
            finished = np.sort(
                np.concatenate([dead_finished, active[~advancing], exhausted])
            )
        else:
            finished = _NO_FINISHED
        yield SuperstepReport(
            active=active,
            counters=counters,
            finished=finished,
            nodes=step_nodes,
            step_ns=step_ns,
            sampler_names=tuple(s.name for s in samplers),
            assignment=assignment,
        )


def run_batched(
    engine: WalkEngine,
    queries: list[WalkQuery],
    profile: ProfileResult | None = None,
) -> WalkRunResult:
    """Execute a query batch step-synchronously on the simulated device."""
    from repro.runtime.engine import WalkRunResult

    graph = engine.graph
    validate_queries(queries, graph.num_nodes)
    pool = StreamPool(engine.seed)
    queue = DynamicQueryQueue(queries)
    n = len(queries)

    aggregate = CostCounters(bytes_per_weight=engine.weight_bytes)
    usage: dict[str, int] = {}

    # -- launch: claim the whole batch from the dynamic queue ------------- #
    fetched = queue.fetch_batch(n)
    fetch_counters = CounterBatch(n, bytes_per_weight=engine.weight_bytes)
    fetch_counters.atomic_ops += 1
    per_query_ns = engine.device.lane_times_ns(fetch_counters)
    aggregate.merge(fetch_counters.totals())

    frontier = WalkerFrontier(fetched)
    streams = pool.batch([q.query_id for q in fetched])

    faults = engine._fault_runtime(num_devices=1)
    if faults is None:
        total_steps = _drive_supersteps(
            engine, frontier, streams, per_query_ns, aggregate, usage
        )
    else:
        from repro.runtime.faults import resilient_supersteps

        total_steps = 0
        for _, report, replayed in resilient_supersteps(
            engine, faults, frontier, pool, streams, per_query_ns, aggregate, usage
        ):
            if not replayed:
                total_steps += report.steps

    executor = KernelExecutor(engine.device)
    kernel = executor.execute(
        per_query_ns,
        counters=aggregate,
        scheduling=engine.scheduling,
        recovery_ns=faults.recovery_ns if faults is not None else 0.0,
    )
    return WalkRunResult(
        paths=frontier.paths(),
        per_query_ns=per_query_ns,
        counters=aggregate,
        kernel=kernel,
        sampler_usage=usage,
        total_steps=total_steps,
        profile=profile,
        preprocess_time_ns=(
            engine.compiled.preprocessing_time_ns if engine.compiled is not None else 0.0
        ),
        degraded_devices=tuple(faults.degraded) if faults is not None else (),
        recovery_time_ns=faults.recovery_ns if faults is not None else 0.0,
        checkpoints_taken=faults.checkpoints_taken if faults is not None else 0,
    )


def fold_counters_by_owner(
    owners: np.ndarray,
    counters: CounterBatch,
    device_aggs: list[CostCounters],
    num_devices: int,
) -> None:
    """Fold one superstep's per-walker counts into per-device aggregates.

    ``owners[j]`` names the device charged with slot ``j`` of ``counters``.
    Exact under any grouping of supersteps: every per-walker count is an
    integer, so the bincount sums (and their int truncation) cannot lose
    precision — the property both the fused replicated fold and the sharded
    ledger rely on for wave-composition invariance.
    """
    for name in CostCounters._COUNT_FIELDS:
        arr = getattr(counters, name)
        if not arr.any():
            continue
        sums = np.bincount(owners, weights=arr, minlength=num_devices)
        for d in range(num_devices):
            if sums[d]:
                agg = device_aggs[d]
                setattr(agg, name, getattr(agg, name) + int(sums[d]))


def _partition_for_devices(engine: WalkEngine, queries: list[WalkQuery]):
    """Partition queries by the engine's policy (with degree costs attached)."""
    from repro.gpusim.multigpu import partition_queries

    graph = engine.graph
    starts = np.array([q.start_node for q in queries], dtype=np.int64)
    # The balanced policy packs by start-node out-degree — the first-order
    # proxy for a walk's cost that is known *before* the walk runs (+1 so
    # zero-degree starts still carry their fetch cost).
    degrees = graph.indptr[starts + 1] - graph.indptr[starts] + 1
    return partition_queries(
        starts, engine.num_devices, engine.partition_policy, costs=degrees
    )


def run_multi_device(
    engine: WalkEngine,
    queries: list[WalkQuery],
    profile: ProfileResult | None = None,
) -> WalkRunResult:
    """Execute a query batch across ``engine.num_devices`` replicated devices.

    The Fig. 15 execution model made real: queries are partitioned by the
    engine's ``partition_policy`` and the job completes at the makespan of
    the slowest device.  In batched mode the devices execute through **one
    fused frontier** (:func:`_run_multi_device_fused`): all devices' walkers
    advance in the same shared superstep, per-device counter/kernel
    bookkeeping is kept via device-id slots, and the D× Python-loop and
    context-rebuild overhead of running the devices one after another
    disappears.  Scalar mode keeps the serial per-device composition
    (:func:`run_multi_device_serial`).

    Placement cannot change any walk: each walker's counter-based stream is
    keyed by its query id (every device derives streams from the same engine
    seed), each walker's counters land in its own slot, and the dead-end /
    termination rules are per-walker.  Paths, per-query simulated times and
    counter totals are therefore bit-identical to a single-device run — and
    the fused loop is bit-identical to the serial composition (the
    multi-device parity and property suites enforce both) — while
    ``kernel.time_ns`` becomes the cross-device makespan and
    ``device_kernels`` records what each device did.
    """
    if engine.execution == "batched":
        return _run_multi_device_fused(engine, queries, profile)
    return run_multi_device_serial(engine, queries, profile)


def _run_multi_device_fused(
    engine: WalkEngine,
    queries: list[WalkQuery],
    profile: ProfileResult | None = None,
) -> WalkRunResult:
    """One shared superstep loop advancing every device's walkers together."""
    from repro.runtime.engine import WalkRunResult
    from repro.runtime.scheduler import split_for_devices

    graph = engine.graph
    validate_queries(queries, graph.num_nodes)
    partitions = _partition_for_devices(engine, queries)
    # Materialising the per-device batches enforces the every-query-exactly-
    # once invariant the parity guarantee rests on, fused or not.
    split_for_devices(queries, partitions)
    num_devices = engine.num_devices

    n = len(queries)
    owner = np.empty(n, dtype=np.int64)
    for d, part in enumerate(partitions):
        owner[part] = d

    aggregate = CostCounters(bytes_per_weight=engine.weight_bytes)
    device_aggs = [
        CostCounters(bytes_per_weight=engine.weight_bytes) for _ in range(num_devices)
    ]
    usage: dict[str, int] = {}

    # -- launch ------------------------------------------------------------ #
    # Each device's queue hands out its whole partition at one atomic per
    # query (see DynamicQueryQueue.fetch_batch); charging one atomic into
    # every walker's fetch slot reproduces the serial composition exactly.
    fetch_counters = CounterBatch(n, bytes_per_weight=engine.weight_bytes)
    fetch_counters.atomic_ops += 1
    per_query_ns = engine.device.lane_times_ns(fetch_counters)
    aggregate.merge(fetch_counters.totals())
    for d, part in enumerate(partitions):
        device_aggs[d].atomic_ops += int(part.size)

    # The fused frontier holds every query in submission order; ``owner``
    # remembers which simulated device each walker executes on.
    frontier = WalkerFrontier(queries)
    pool = StreamPool(engine.seed)
    streams = pool.batch([q.query_id for q in queries])

    def fold(active: np.ndarray, counters: CounterBatch) -> None:
        """Attribute one superstep's counts to each walker's fixed device."""
        fold_counters_by_owner(owner[active], counters, device_aggs, num_devices)

    faults = engine._fault_runtime()
    if faults is None:
        total_steps = _drive_supersteps(
            engine, frontier, streams, per_query_ns, aggregate, usage, fold=fold
        )
    else:
        from repro.runtime.faults import reassign_owners, resilient_supersteps

        def on_failure(dead: list[int]) -> None:
            # Degraded mode: the dead device's walkers continue on the
            # survivors.  Counts folded before the failure stay where the
            # work actually executed; only future supersteps move.
            reassign_owners(owner, dead, faults.survivors())

        total_steps = 0
        for _, report, replayed in resilient_supersteps(
            engine,
            faults,
            frontier,
            pool,
            streams,
            per_query_ns,
            aggregate,
            usage,
            on_failure=on_failure,
        ):
            if not replayed:
                total_steps += report.steps
                fold(report.active, report.counters)
        if faults.degraded and faults.survivors():
            # Rebuild the per-device schedules against the surviving
            # ownership: migrated walkers queue on their new device.
            partitions = [
                np.flatnonzero(owner == d) for d in range(num_devices)
            ]

    executor = KernelExecutor(engine.device)
    device_kernels = [
        executor.execute(
            per_query_ns[part], counters=device_aggs[d], scheduling=engine.scheduling
        )
        for d, part in enumerate(partitions)
    ]
    kernel = _merge_device_kernels(
        engine,
        device_kernels,
        aggregate,
        n,
        recovery_ns=faults.recovery_ns if faults is not None else 0.0,
    )
    return WalkRunResult(
        paths=frontier.paths(),
        per_query_ns=per_query_ns,
        counters=aggregate,
        kernel=kernel,
        sampler_usage=usage,
        total_steps=total_steps,
        profile=profile,
        preprocess_time_ns=(
            engine.compiled.preprocessing_time_ns if engine.compiled is not None else 0.0
        ),
        num_devices=num_devices,
        partition_policy=engine.partition_policy,
        device_kernels=device_kernels,
        degraded_devices=tuple(faults.degraded) if faults is not None else (),
        recovery_time_ns=faults.recovery_ns if faults is not None else 0.0,
        checkpoints_taken=faults.checkpoints_taken if faults is not None else 0,
    )


def run_multi_device_serial(
    engine: WalkEngine,
    queries: list[WalkQuery],
    profile: ProfileResult | None = None,
) -> WalkRunResult:
    """Serial per-device composition (the fused loop's executable spec).

    Every device runs its *own* engine instance — a fresh
    :class:`~repro.walks.state.WalkerFrontier` and
    :class:`~repro.runtime.scheduler.DynamicQueryQueue` through
    :func:`run_batched` (or the scalar interpreter when
    ``execution="scalar"``) — one after another.  Used directly for scalar
    execution and as the reference the fused batched loop is property-tested
    against.
    """
    from repro.runtime.engine import WalkRunResult
    from repro.runtime.scheduler import split_for_devices

    graph = engine.graph
    validate_queries(queries, graph.num_nodes)
    partitions = _partition_for_devices(engine, queries)
    device_queries = split_for_devices(queries, partitions)

    n = len(queries)
    paths: list[list[int]] = [[] for _ in range(n)]
    per_query_ns = np.zeros(n, dtype=np.float64)
    aggregate = CostCounters(bytes_per_weight=engine.weight_bytes)
    usage: dict[str, int] = {}
    total_steps = 0
    device_kernels = []

    for part, sub_queries in zip(partitions, device_queries, strict=False):
        if engine.execution == "batched":
            sub = run_batched(engine, sub_queries, None)
        else:
            sub = engine._run_scalar(sub_queries, None)
        device_kernels.append(sub.kernel)
        per_query_ns[part] = sub.per_query_ns
        for index, path in zip(part, sub.paths, strict=False):
            paths[int(index)] = path
        aggregate.merge(sub.counters)
        for name, count in sub.sampler_usage.items():
            usage[name] = usage.get(name, 0) + count
        total_steps += sub.total_steps

    kernel = _merge_device_kernels(engine, device_kernels, aggregate, n)
    return WalkRunResult(
        paths=paths,
        per_query_ns=per_query_ns,
        counters=aggregate,
        kernel=kernel,
        sampler_usage=usage,
        total_steps=total_steps,
        profile=profile,
        preprocess_time_ns=(
            engine.compiled.preprocessing_time_ns if engine.compiled is not None else 0.0
        ),
        num_devices=engine.num_devices,
        partition_policy=engine.partition_policy,
        device_kernels=device_kernels,
    )


#: Bytes of one migrating walker record: query id, current node, previous
#: node, step counter and max length (5 x int64) plus the 128-bit Philox key
#: identifying the walker's counter-based random stream.  What actually
#: crosses the interconnect when a walk leaves its shard — the path prefix
#: stays behind on the originating device and is gathered at collect time.
WALKER_MIGRATION_BYTES = 56


@dataclass(frozen=True)
class _CommSummary:
    """Coalesced-migration communication totals of a sharded run.

    Built lazily by :meth:`ShardedRunAccounting._comm_summary` from the
    migration log.  ``queries``/``shares`` are sorted by (query, walker step
    index) so per-query accumulation happens in one canonical float order,
    whatever submit/stream interleaving produced the log.
    """

    queries: np.ndarray
    shares: np.ndarray
    per_device_ns: np.ndarray
    num_batches: int


class ShardedRunAccounting:
    """Per-device bookkeeping of a graph-sharded run.

    The sharded driver executes the *same* fused superstep loop as the
    replicated path (walks, counters and per-query base times are therefore
    bit-identical by construction); this object is where the sharding shows
    up.  Each walker-step is attributed to the device *hosting* the walker
    — the shard owning its current node, unless the node is a ghost-cached
    remote hub the walker is reading locally — and every step whose sampled
    destination is neither owned by nor ghosted on the hosting device
    migrates the walker there.

    Migrations are **coalesced**: all walkers leaving device ``s`` for
    device ``d`` at the same walk-step index travel as one batched transfer
    (one ``interconnect_latency_ns`` plus ``count x WALKER_MIGRATION_BYTES``
    of bandwidth), the KnightKing message-coalescing model.  Batches are
    keyed by the walkers' *step index* — not the wall-clock superstep — so
    an interleaved submit/stream session groups migrations exactly like the
    one-shot run and reconstructs identical communication totals.

    Per-device schedules treat each *resident walker* as one queue entry
    (its fetch plus every step it executed there, accumulated in walk-step
    order), so sessions also reconstruct the exact per-device
    schedules/makespans of the one-shot run.
    """

    def __init__(self, engine: WalkEngine, sharded, ghost=None) -> None:
        self.engine = engine
        self.sharded = sharded
        self.ghost = ghost
        self.num_shards = sharded.num_shards
        self.migration_ns = engine.device.migration_time_ns(WALKER_MIGRATION_BYTES)
        self._latency_ns = float(engine.device.interconnect_latency_ns)
        self._bytes_per_ns = float(engine.device.interconnect_bytes_per_ns)
        self._owner = sharded.owner_map
        self._ghost_mask = ghost.mask if ghost is not None else None
        # Flat view for cheap (host, node) lookups on the crossing subset.
        self._ghost_flat = self._ghost_mask.ravel() if ghost is not None else None
        self._num_nodes = int(self._owner.size)
        self.device_aggs = [
            CostCounters(bytes_per_weight=engine.weight_bytes)
            for _ in range(self.num_shards)
        ]
        # Resident-walker ledger: cell (d, q) accumulates all the lane time
        # query ``q`` executed on device ``d`` (its fetch, then every step
        # hosted there, added in walk-step order — so the float sums are
        # invariant to how queries were split into waves).  ``_res_seen``
        # marks the (device, query) pairs that actually executed work.
        # Each superstep lands as one fancy scatter-add (a walker occupies
        # exactly one slot per superstep, so the pairs are unique).
        self._res_times = np.zeros((self.num_shards, 0), dtype=np.float64)
        self._res_seen = np.zeros((self.num_shards, 0), dtype=bool)
        self._res_used = 0
        # Per-device counter accumulation: one float64 cell per (counter
        # field, device), folded eagerly every superstep so the superstep's
        # CounterBatch can be released immediately (integer counts sum
        # exactly in float64).  Materialised into ``device_aggs`` lazily.
        self._counter_sums = np.zeros(
            (len(CostCounters._COUNT_FIELDS), self.num_shards), dtype=np.float64
        )
        # Migration log: (walker step index, global query index, source
        # device, destination device) per migration, batched lazily.
        self._mig_steps: list[np.ndarray] = []
        self._mig_queries: list[np.ndarray] = []
        self._mig_src: list[np.ndarray] = []
        self._mig_dst: list[np.ndarray] = []
        # Per-wave hosting device of each walker (wave offset -> array
        # indexed by wave-local frontier position).
        self._hosts: dict[int, np.ndarray] = {}
        self.remote_steps = 0
        self.ghost_hits = 0
        self._comm_cache: _CommSummary | None = None

    def _ensure_capacity(self, upto: int) -> None:
        """Grow the resident-walker ledger to cover query indices < upto."""
        if upto > self._res_used:
            self._res_used = upto
        capacity = self._res_times.shape[1]
        if upto <= capacity:
            return
        new = max(upto, capacity * 2, 256)
        times = np.zeros((self.num_shards, new), dtype=np.float64)
        times[:, :capacity] = self._res_times
        seen = np.zeros((self.num_shards, new), dtype=bool)
        seen[:, :capacity] = self._res_seen
        self._res_times = times
        self._res_seen = seen

    # ------------------------------------------------------------------ #
    def charge_fetch(self, start_nodes: np.ndarray, fetch_ns: np.ndarray, offset: int = 0) -> None:
        """Attribute each query's queue-fetch atomic to its start node's owner.

        Queries are submitted straight to the device owning their start
        node, so the launch atomic executes there — and that device is the
        walker's initial host.  Fetch tasks sort before every walk step
        (ordinal -1), in submission order — exactly where the one-shot loop
        prices them.
        """
        starts = np.asarray(start_nodes, dtype=np.int64)
        owners = self._owner[starts]
        self._hosts[offset] = owners.copy()
        self._ensure_capacity(offset + owners.size)
        cols = np.arange(owners.size, dtype=np.int64) + offset
        # fetch_ns aliases the live per-query accumulator — copy the values.
        self._res_times[owners, cols] += fetch_ns
        self._res_seen[owners, cols] = True
        counts = np.bincount(owners, minlength=self.num_shards)
        for d in np.nonzero(counts)[0]:
            self.device_aggs[d].atomic_ops += int(counts[d])

    def observe(
        self,
        report: SuperstepReport,
        frontier: WalkerFrontier,
        step_ordinal: int,
        offset: int = 0,
    ) -> None:
        """Fold one superstep into the per-device ledgers.

        Each active walker's step executes on its hosting device (without a
        ghost cache the host is always the owner of ``report.nodes``).  A
        walker whose sampled destination (``frontier.current``) is owned by
        a different device either reads a local ghost copy — a ghost hit,
        host unchanged, no traffic — or migrates: host reassigned, one
        entry in the coalesced migration log.  Migration time never touches
        the base per-query times, which stay bit-identical to replicated.
        """
        active = report.active
        if active.size == 0:
            return
        hosts = self._hosts[offset]
        current = hosts[active]
        counters = report.counters
        k = self.num_shards
        live = [
            (j, column)
            for j, name in enumerate(CostCounters._COUNT_FIELDS)
            if (column := getattr(counters, name)).any()
        ]
        if live:
            # One bincount over (field, device) keys covers every non-zero
            # counter column of the superstep in a single pass.
            keys = np.concatenate([current + j * k for j, _ in live])
            weights = np.concatenate([column for _, column in live])
            top = live[-1][0] + 1
            self._counter_sums[:top] += np.bincount(
                keys, weights=weights, minlength=top * k
            ).reshape(top, k)
        cols = active + offset if offset else active
        self._res_times[current, cols] += report.step_ns
        self._res_seen[current, cols] = True

        destinations = frontier.current[active]
        dest_owner = self._owner[destinations]
        # A boundary crossing needs a foreign destination owner AND an
        # actual move — walkers that stayed put (termination, or a
        # self-loop landing on the node they already occupy) generate no
        # traffic even when riding a ghost copy of a remote node.
        crossing = dest_owner != current
        crossing &= destinations != report.nodes
        idx = np.flatnonzero(crossing)
        if idx.size == 0:
            return
        if self._ghost_flat is not None:
            hit = self._ghost_flat[current[idx] * self._num_nodes + destinations[idx]]
            hits = int(np.count_nonzero(hit))
            if hits:
                self.ghost_hits += hits
                idx = idx[~hit]
                if idx.size == 0:
                    return
        count = int(idx.size)
        self.remote_steps += count
        movers = active[idx]
        dest = dest_owner[idx]
        self._mig_steps.append(np.full(count, step_ordinal, dtype=np.int64))
        self._mig_queries.append(movers + offset if offset else movers)
        self._mig_src.append(current[idx])
        self._mig_dst.append(dest)
        hosts[movers] = dest
        self._comm_cache = None

    def migrations_at(self, step_ordinal: int) -> tuple[np.ndarray, np.ndarray]:
        """The (src, dst) endpoints of the migrations logged at one ordinal.

        Used by the fault-injection runtime to price resending a dropped
        step's coalesced batches.  Only the most recent log entry is
        consulted — :meth:`observe` appends at most one entry per superstep
        and the drop is checked right after the observe call.
        """
        if self._mig_steps and int(self._mig_steps[-1][0]) == step_ordinal:
            return self._mig_src[-1], self._mig_dst[-1]
        return _NO_FINISHED, _NO_FINISHED

    def take_over(
        self, dead: list[int], survivors: list[int], frontier: WalkerFrontier
    ) -> None:
        """Degraded-mode shard takeover after permanent device failures.

        The dead devices' node ranges are re-owned round-robin by the
        survivors (on a private copy — the shared
        :class:`~repro.graph.sharded.ShardedCSRGraph` decomposition is never
        mutated), and every walker hosted on a dead device re-hosts onto
        the new owner of its current node.  With no survivors the
        replacement-device policy applies: ownership stays with the standby
        that inherits the dead device's identity.

        Work the dead device executed before failing stays on its ledger —
        its partial kernel still contributes to the makespan, which is the
        honest account of a mid-run loss.
        """
        if not survivors:
            return
        owner = self._owner.copy()
        pool = np.asarray(survivors, dtype=np.int64)
        for device in dead:
            nodes = np.flatnonzero(owner == device)
            if nodes.size:
                owner[nodes] = pool[np.arange(nodes.size) % pool.size]
        self._owner = owner
        dead_arr = np.asarray(dead, dtype=np.int64)
        for offset, hosts in self._hosts.items():
            stale = np.flatnonzero(np.isin(hosts, dead_arr))
            if stale.size:
                hosts[stale] = owner[frontier.current[stale + offset]]
        self._comm_cache = None

    # ------------------------------------------------------------------ #
    def _comm_summary(self) -> _CommSummary:
        """Coalesce the migration log into per-batch transfers (cached).

        Migrations are grouped by (walker step index, source, destination);
        each group is one interconnect message costing one latency plus the
        batch payload over bandwidth.  Every migrating walker is assigned
        its equal share of its batch for the per-query communication view.
        Grouping by step index (not wall-clock superstep) makes the batches
        — and therefore every derived number — invariant to how queries
        were split into waves.
        """
        if self._comm_cache is not None:
            return self._comm_cache
        k = self.num_shards
        if self._mig_steps:
            steps = np.concatenate(self._mig_steps)
            queries = np.concatenate(self._mig_queries)
            src = np.concatenate(self._mig_src)
            dst = np.concatenate(self._mig_dst)
            keys = (steps * k + src) * k + dst
            unique, inverse, counts = np.unique(
                keys, return_inverse=True, return_counts=True
            )
            batch_ns = self._latency_ns + counts * (
                WALKER_MIGRATION_BYTES / self._bytes_per_ns
            )
            per_device = np.bincount(
                (unique // k) % k, weights=batch_ns, minlength=k
            )
            # No canonicalising sort is needed for the per-query view: a
            # query's migrations enter the log in walk-step order under
            # every wave composition (observe() runs the supersteps of its
            # wave in order), so each query's float shares always
            # accumulate in the same sequence.
            shares = batch_ns[inverse] / counts[inverse]
            summary = _CommSummary(
                queries=queries,
                shares=shares,
                per_device_ns=per_device,
                num_batches=int(unique.size),
            )
        else:
            summary = _CommSummary(
                queries=np.zeros(0, dtype=np.int64),
                shares=np.zeros(0, dtype=np.float64),
                per_device_ns=np.zeros(k, dtype=np.float64),
                num_batches=0,
            )
        self._comm_cache = summary
        return summary

    @property
    def comm_ns(self) -> np.ndarray:
        """Per-source-device interconnect time (coalesced batch costs)."""
        return self._comm_summary().per_device_ns

    @property
    def migration_batches(self) -> int:
        """Coalesced interconnect messages sent (batches, not walkers)."""
        return self._comm_summary().num_batches

    def per_query_comm_ns(self, num_queries: int) -> np.ndarray:
        """Each query's share of the batched transfers it rode in.

        A walker in a batch of ``c`` is charged ``1/c`` of the batch cost —
        per-query shares sum (to float tolerance) to the total interconnect
        time, and the accumulation order is canonical (query, step index),
        so the array is identical however the run was waved.
        """
        summary = self._comm_summary()
        out = np.zeros(num_queries, dtype=np.float64)
        np.add.at(out, summary.queries, summary.shares)
        return out

    def _fold_pending_counters(self) -> None:
        """Materialise the accumulated per-device counter sums.

        ``observe`` folds every superstep's counts into ``_counter_sums``
        eagerly (so the superstep's CounterBatch is released right away);
        this flushes those sums into the ``device_aggs`` objects and zeroes
        the matrix, which keeps repeated kernel builds idempotent.
        """
        sums = self._counter_sums
        if not sums.any():
            return
        for j, name in enumerate(CostCounters._COUNT_FIELDS):
            row = sums[j]
            if not row.any():
                continue
            for d in range(self.num_shards):
                if row[d]:
                    agg = self.device_aggs[d]
                    setattr(agg, name, getattr(agg, name) + int(row[d]))
        sums[:] = 0.0

    def device_kernels(self, scheduling: str) -> list[KernelResult]:
        """Build one kernel per shard device from the accumulated task log.

        The schedulable unit is one *resident walker*: all the work query
        ``q`` executed on device ``d`` — its queue fetch plus every
        walker-step hosted there — is one unit pulled from the device's
        query queue, exactly the one-query-per-processing-unit model of the
        replicated kernels (Section 5.3).  Per-unit times accumulate in
        walk-step order whatever submit/stream interleaving produced the
        log, so sessions reconstruct the one-shot makespans bit-for-bit.
        The device's coalesced migration traffic overlaps the compute
        through the executor's interconnect hook (only the excess beyond
        the lane makespan serialises).  Safe to call repeatedly (a session
        may collect more than once): the ledgers are only read.
        """
        self._fold_pending_counters()
        executor = KernelExecutor(self.engine.device)
        kernels = []
        comm = self.comm_ns
        used = self._res_used
        for d in range(self.num_shards):
            # The walkers resident on this device, in query-id order; each
            # one's ledger cell already holds its fetch plus every hosted
            # step, accumulated in walk-step order.
            tasks = self._res_times[d, :used][self._res_seen[d, :used]]
            kernels.append(
                executor.execute(
                    tasks,
                    counters=self.device_aggs[d].copy(),
                    scheduling=scheduling,
                    comm_ns=float(comm[d]),
                    comm_overlap=True,
                )
            )
        return kernels


def run_sharded(
    engine: WalkEngine,
    queries: list[WalkQuery],
    profile: ProfileResult | None = None,
) -> WalkRunResult:
    """Execute a query batch across ``engine.num_devices`` graph shards.

    The graph-partitioned counterpart of :func:`run_multi_device`: instead
    of replicating the graph and splitting the queries, the *graph* is split
    into per-device node-range shards
    (:class:`~repro.graph.sharded.ShardedCSRGraph`) and every walker
    executes each step on the device owning its current node, migrating —
    at a modeled interconnect cost — whenever a sampled step lands on a
    remote shard.

    The walk execution itself is the same fused superstep loop as every
    other mode, so paths, counter totals and per-query base times are
    bit-identical to a replicated (or single-device) run; what sharding
    changes is *where* each step's work lands (per-device kernels follow
    the walkers around) and the new communication term — per-query
    migration time, per-device interconnect time and the resulting
    makespan.
    """
    from repro.runtime.engine import WalkRunResult

    graph = engine.graph
    validate_queries(queries, graph.num_nodes)
    if engine.execution != "batched":
        raise SimulationError(
            "sharded graph placement requires the batched execution mode"
        )
    sharded = engine._sharded_graph()
    n = len(queries)

    aggregate = CostCounters(bytes_per_weight=engine.weight_bytes)
    usage: dict[str, int] = {}
    acct = ShardedRunAccounting(engine, sharded, ghost=engine._ghost_cache())

    # -- launch: every query is submitted to its start node's owner ------- #
    fetch_counters = CounterBatch(n, bytes_per_weight=engine.weight_bytes)
    fetch_counters.atomic_ops += 1
    per_query_ns = engine.device.lane_times_ns(fetch_counters)
    aggregate.merge(fetch_counters.totals())
    starts = np.array([q.start_node for q in queries], dtype=np.int64)
    acct.charge_fetch(starts, per_query_ns)

    frontier = WalkerFrontier(queries)
    pool = StreamPool(engine.seed)
    streams = pool.batch([q.query_id for q in queries])

    total_steps = 0
    faults = engine._fault_runtime()
    if faults is None:
        reports = iter_supersteps(
            engine, frontier, streams, per_query_ns, aggregate, usage, track_finished=False
        )
        for step_ordinal, report in enumerate(reports):
            total_steps += report.steps
            acct.observe(report, frontier, step_ordinal)
    else:
        from repro.runtime.faults import resilient_supersteps

        def on_failure(dead: list[int]) -> None:
            acct.take_over(dead, faults.survivors(), frontier)

        for step_ordinal, report, replayed in resilient_supersteps(
            engine,
            faults,
            frontier,
            pool,
            streams,
            per_query_ns,
            aggregate,
            usage,
            on_failure=on_failure,
        ):
            if replayed:
                # Bit-identical re-execution: the first pass already landed
                # this superstep's counts, hosting and migrations.
                continue
            total_steps += report.steps
            acct.observe(report, frontier, step_ordinal)
            src, dst = acct.migrations_at(step_ordinal)
            faults.charge_interconnect_drop(
                step_ordinal, src, dst, WALKER_MIGRATION_BYTES
            )

    device_kernels = acct.device_kernels(engine.scheduling)
    kernel = _merge_device_kernels(
        engine,
        device_kernels,
        aggregate,
        n,
        recovery_ns=faults.recovery_ns if faults is not None else 0.0,
    )
    return WalkRunResult(
        paths=frontier.paths(),
        per_query_ns=per_query_ns,
        counters=aggregate,
        kernel=kernel,
        sampler_usage=usage,
        total_steps=total_steps,
        profile=profile,
        preprocess_time_ns=(
            engine.compiled.preprocessing_time_ns if engine.compiled is not None else 0.0
        ),
        num_devices=engine.num_devices,
        partition_policy=engine.partition_policy,
        device_kernels=device_kernels,
        graph_placement="sharded",
        shard_policy=sharded.policy,
        per_query_comm_ns=acct.per_query_comm_ns(n),
        comm_time_ns=float(acct.comm_ns.sum()),
        remote_steps=acct.remote_steps,
        ghost_hits=acct.ghost_hits,
        migration_batches=acct.migration_batches,
        degraded_devices=tuple(faults.degraded) if faults is not None else (),
        recovery_time_ns=faults.recovery_ns if faults is not None else 0.0,
        checkpoints_taken=faults.checkpoints_taken if faults is not None else 0,
    )


def _merge_device_kernels(
    engine: WalkEngine,
    device_kernels: list[KernelResult],
    aggregate: CostCounters,
    num_queries: int,
    recovery_ns: float = 0.0,
) -> KernelResult:
    """The aggregate kernel view: completion at the slowest device, lane
    times concatenated so utilisation/imbalance diagnostics still work.
    Recovery time (checkpoints, retries, replay) serialises after the
    makespan — the whole step-synchronous fleet stalls while one device
    recovers."""
    makespan = max((k.time_ns for k in device_kernels), default=0.0)
    return KernelResult(
        time_ns=makespan + float(recovery_ns),
        total_work_ns=float(sum(k.total_work_ns for k in device_kernels)),
        lane_times_ns=(
            np.concatenate([k.lane_times_ns for k in device_kernels])
            if device_kernels else np.zeros(0)
        ),
        num_queries=num_queries,
        counters=aggregate,
        scheduling=engine.scheduling,
        comm_ns=float(sum(k.comm_ns for k in device_kernels)),
        recovery_ns=float(recovery_ns),
    )


def _apply_step_overhead(engine: WalkEngine, ctx: BatchStepContext,
                         part: np.ndarray, sampler) -> None:
    """Run a baseline's per-step framework-overhead hook for a partition.

    Hooks are scalar by contract (they model per-walker bookkeeping such as
    NextDoor's transit regrouping), so each walker gets a real
    :class:`StepContext` shim.  The scalar engine hands hooks the step's
    *live, already-populated* counters — a hook may read the counts the
    selection and the kernel just charged — so the shim's counters are
    seeded from the walker's slot and written back wholesale afterwards.
    """
    for i in part:
        slot = int(ctx.slots[int(i)])
        scalar_ctx, _ = ctx.scalar_context(int(i))
        scalar_ctx.counters = ctx.counters.snapshot(slot)
        engine.step_overhead(scalar_ctx, sampler)
        ctx.counters.write_back(slot, scalar_ctx.counters)
