"""ThunderRW (Sun et al., VLDB 2021): the state-of-the-art in-memory CPU engine.

ThunderRW interleaves many walkers per CPU core to hide memory latency and
supports several sampling strategies; for dynamic walks the paper's
configuration uses rejection sampling when the proposal bound is static
(unweighted Node2Vec) and inverse-transform sampling otherwise.  It runs on
the host CPU preset, which is what produces the order-of-magnitude gap to the
GPU systems in Table 2.
"""

from __future__ import annotations

from repro.baselines.base import BaselineSystem
from repro.compiler.analyzer import analyze_get_weight
from repro.compiler.flags import BoundGranularity
from repro.gpusim.device import EPYC_9124P
from repro.gpusim.memory import MemoryModel
from repro.sampling.base import Sampler
from repro.sampling.its import InverseTransformSampler
from repro.sampling.rejection import RejectionSampler
from repro.walks.spec import WalkSpec


def _sampler(spec: WalkSpec) -> Sampler:
    """RJS when the bound is a compile-time constant, ITS otherwise (paper setup)."""
    analysis = analyze_get_weight(spec)
    if analysis.supported and analysis.granularity is BoundGranularity.PER_KERNEL:
        return RejectionSampler()
    return InverseTransformSampler()


def make_thunderrw() -> BaselineSystem:
    """Build the ThunderRW baseline model."""
    return BaselineSystem(
        name="ThunderRW",
        platform="cpu",
        device=EPYC_9124P,
        sampler_factory=_sampler,
        description="In-memory CPU walk engine (RJS for static bounds, ITS for dynamic walks)",
        memory_model=MemoryModel(graph_overhead=1.0, per_query_bytes=128),
        scheduling="dynamic",
        uses_static_bound=True,
    )
