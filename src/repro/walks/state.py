"""Walker and query state.

A *query* is one requested random walk (start node + maximum length); a
*walker state* is the evolving position of that walk: current node, previous
node, step counter, the path so far and a small dict of workload-specific
fields (e.g. the MetaPath schema position).  Dynamic random walks are dynamic
precisely because ``get_weight`` reads this state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WalkSpecError


@dataclass(frozen=True)
class WalkQuery:
    """One requested random walk."""

    query_id: int
    start_node: int
    max_length: int

    def __post_init__(self) -> None:
        if self.max_length < 1:
            raise WalkSpecError("walk length must be at least 1 step")
        if self.start_node < 0:
            raise WalkSpecError("start node must be non-negative")


@dataclass
class WalkerState:
    """Mutable per-walker state consulted by ``get_weight`` at every step.

    Attributes
    ----------
    query:
        The originating query.
    current_node:
        Node the walker currently sits on.
    prev_node:
        Node visited in the previous step, or ``-1`` before the first step.
        Node2Vec and 2nd-order PageRank read this to bias the next step.
    step:
        Zero-based index of the step about to be taken.
    path:
        Nodes visited so far (starts with the start node).
    params:
        Workload-specific mutable fields, e.g. ``{"schema_pos": 2}``.
    """

    query: WalkQuery
    current_node: int
    prev_node: int = -1
    step: int = 0
    path: list[int] = field(default_factory=list)
    params: dict[str, float | int] = field(default_factory=dict)

    @classmethod
    def start(cls, query: WalkQuery) -> WalkerState:
        """Fresh walker positioned on the query's start node."""
        return cls(query=query, current_node=query.start_node, path=[query.start_node])

    def advance(self, next_node: int) -> None:
        """Move the walker to ``next_node`` (called after the workload update)."""
        self.prev_node = self.current_node
        self.current_node = int(next_node)
        self.path.append(int(next_node))
        self.step += 1

    @property
    def finished(self) -> bool:
        return self.step >= self.query.max_length

    @property
    def walk_length(self) -> int:
        """Number of steps taken so far."""
        return len(self.path) - 1


@dataclass
class FrontierSnapshot:
    """A decoupled copy of a :class:`WalkerFrontier`'s mutable state.

    Produced by :meth:`WalkerFrontier.snapshot` and consumed by
    :meth:`WalkerFrontier.restore`; every array is a private copy, so one
    snapshot survives any number of restores.
    """

    queries: list[WalkQuery]
    max_lengths: np.ndarray
    current: np.ndarray
    prev: np.ndarray
    steps: np.ndarray
    alive: np.ndarray
    path_buf: np.ndarray
    path_len: np.ndarray
    states: list["WalkerState | None"]

    @property
    def num_walkers(self) -> int:
        return len(self.queries)


class WalkerFrontier:
    """Array-form (structure-of-arrays) state of a batch of walkers.

    The batched step-synchronous engine advances every active walker once per
    superstep, so the per-walker fields of :class:`WalkerState` are kept as
    parallel numpy arrays: ``current``, ``prev``, ``steps`` and a
    pre-allocated path matrix.  Workload code that still needs a real
    :class:`WalkerState` (custom ``update`` overrides, scalar-fallback
    sampling, compiler hint evaluation) obtains one through
    :meth:`state_view`, which lazily materialises the object and replays the
    missing steps from the path matrix — walkers on the fully vectorised hot
    path never pay for object-form state at all.

    Attributes
    ----------
    queries:
        The originating queries, in submission order.
    current / prev / steps:
        Per-walker position, previous node (-1 before the first step) and
        number of steps taken, as ``int64`` arrays.
    alive:
        False once a walker terminated early (dead end / zero weights).
    path_buf / path_len:
        ``path_buf[i, :path_len[i]]`` is walker ``i``'s path so far.
    """

    def __init__(self, queries: list[WalkQuery]) -> None:
        self.queries = list(queries)
        n = len(self.queries)
        starts = np.array([q.start_node for q in self.queries], dtype=np.int64)
        self.max_lengths = np.array([q.max_length for q in self.queries], dtype=np.int64)
        self.current = starts.copy()
        self.prev = np.full(n, -1, dtype=np.int64)
        self.steps = np.zeros(n, dtype=np.int64)
        self.alive = np.ones(n, dtype=bool)
        width = int(self.max_lengths.max()) + 1 if n else 1
        self.path_buf = np.full((n, width), -1, dtype=np.int64)
        if n:
            self.path_buf[:, 0] = starts
        self.path_len = np.ones(n, dtype=np.int64)
        self._states: list[WalkerState | None] = [None] * n

    def __len__(self) -> int:
        return len(self.queries)

    # ------------------------------------------------------------------ #
    def extend(self, queries: list[WalkQuery]) -> np.ndarray:
        """Append fresh walkers mid-flight and return their frontier positions.

        The continuous-batching scheduler admits newly submitted queries
        into a frontier whose earlier walkers are still running, so every
        per-walker array grows in place (the path buffer widens when a new
        query's ``max_length`` exceeds the current width).  Existing walker
        state is untouched — positions already handed out stay valid.
        """
        queries = list(queries)
        k = len(queries)
        if k == 0:
            return np.zeros(0, dtype=np.int64)
        old = len(self.queries)
        positions = np.arange(old, old + k, dtype=np.int64)
        starts = np.array([q.start_node for q in queries], dtype=np.int64)
        max_lengths = np.array([q.max_length for q in queries], dtype=np.int64)
        self.queries.extend(queries)
        self.max_lengths = np.concatenate([self.max_lengths, max_lengths])
        self.current = np.concatenate([self.current, starts])
        self.prev = np.concatenate([self.prev, np.full(k, -1, dtype=np.int64)])
        self.steps = np.concatenate([self.steps, np.zeros(k, dtype=np.int64)])
        self.alive = np.concatenate([self.alive, np.ones(k, dtype=bool)])
        width = max(self.path_buf.shape[1], int(max_lengths.max()) + 1)
        path_buf = np.full((old + k, width), -1, dtype=np.int64)
        path_buf[:old, : self.path_buf.shape[1]] = self.path_buf
        path_buf[old:, 0] = starts
        self.path_buf = path_buf
        self.path_len = np.concatenate([self.path_len, np.ones(k, dtype=np.int64)])
        self._states.extend([None] * k)
        return positions

    # ------------------------------------------------------------------ #
    def active_indices(self) -> np.ndarray:
        """Walkers that are alive and have steps left to take."""
        return np.nonzero(self.alive & (self.steps < self.max_lengths))[0]

    def terminate(self, indices: np.ndarray) -> None:
        """Stop the given walkers (dead end or all-zero transition weights)."""
        self.alive[indices] = False

    def advance(self, indices: np.ndarray, next_nodes: np.ndarray) -> None:
        """Move the given walkers to their sampled next nodes."""
        self.prev[indices] = self.current[indices]
        self.current[indices] = next_nodes
        self.steps[indices] += 1
        self.path_buf[indices, self.steps[indices]] = next_nodes
        self.path_len[indices] += 1

    # ------------------------------------------------------------------ #
    def snapshot(self) -> FrontierSnapshot:
        """Deep copy of every mutable per-walker field.

        The checkpoint half of the fault-tolerance story
        (:mod:`repro.runtime.faults`): the returned snapshot is fully
        decoupled from the live frontier, so it can be restored any number
        of times.  Materialised :class:`WalkerState` objects are copied too
        — :meth:`state_view`'s lazy replay only calls ``advance``, never the
        workload's ``update``, so spec-mutated ``params`` (e.g. the MetaPath
        schema position) would otherwise be unrecoverable.
        """
        states = [
            None
            if s is None
            else WalkerState(
                query=s.query,
                current_node=s.current_node,
                prev_node=s.prev_node,
                step=s.step,
                path=list(s.path),
                params=dict(s.params),
            )
            for s in self._states
        ]
        return FrontierSnapshot(
            queries=list(self.queries),
            max_lengths=self.max_lengths.copy(),
            current=self.current.copy(),
            prev=self.prev.copy(),
            steps=self.steps.copy(),
            alive=self.alive.copy(),
            path_buf=self.path_buf.copy(),
            path_len=self.path_len.copy(),
            states=states,
        )

    def restore(self, snap: FrontierSnapshot) -> None:
        """Rewind the frontier to a :meth:`snapshot`.

        The snapshot must cover exactly the walkers the frontier currently
        holds — recovery policies checkpoint after every admission precisely
        so a restore never has to truncate live walkers.
        """
        if len(snap.queries) != len(self.queries):
            raise WalkSpecError(
                f"snapshot covers {len(snap.queries)} walkers but the frontier "
                f"holds {len(self.queries)}; checkpoint after admissions"
            )
        self.queries = list(snap.queries)
        self.max_lengths = snap.max_lengths.copy()
        self.current = snap.current.copy()
        self.prev = snap.prev.copy()
        self.steps = snap.steps.copy()
        self.alive = snap.alive.copy()
        self.path_buf = snap.path_buf.copy()
        self.path_len = snap.path_len.copy()
        self._states = [
            None
            if s is None
            else WalkerState(
                query=s.query,
                current_node=s.current_node,
                prev_node=s.prev_node,
                step=s.step,
                path=list(s.path),
                params=dict(s.params),
            )
            for s in snap.states
        ]

    # ------------------------------------------------------------------ #
    def state_view(self, index: int) -> WalkerState:
        """Object-form state of one walker, synced to the array state.

        The returned object is persistent, so workload-specific ``params``
        mutated by ``spec.update`` survive across supersteps exactly as they
        do in the scalar engine.
        """
        index = int(index)
        state = self._states[index]
        if state is None:
            state = WalkerState.start(self.queries[index])
            self._states[index] = state
        while state.step < int(self.steps[index]):
            state.advance(int(self.path_buf[index, state.step + 1]))
        return state

    def path(self, index: int) -> list[int]:
        """Walker ``index``'s walk so far (the single source of the
        path-buffer slice convention)."""
        index = int(index)
        return self.path_buf[index, : int(self.path_len[index])].tolist()

    def paths(self) -> list[list[int]]:
        """The walks, one python list per query in submission order."""
        return [self.path(i) for i in range(len(self.queries))]


def make_queries(
    num_nodes: int,
    walk_length: int,
    num_queries: int | None = None,
    start_nodes: np.ndarray | None = None,
    seed: int = 0,
) -> list[WalkQuery]:
    """Create walk queries, one per node by default (the paper's setting).

    Parameters
    ----------
    num_nodes:
        Number of nodes in the graph.
    walk_length:
        Maximum number of steps per walk (80 in the paper, 5 for MetaPath).
    num_queries:
        When smaller than ``num_nodes``, a deterministic subsample of start
        nodes is used (the benchmark harness uses this to keep the
        scale-model runs short).
    start_nodes:
        Explicit start nodes; overrides ``num_queries``.
    """
    if num_nodes < 1:
        raise WalkSpecError("graph must have at least one node")
    if start_nodes is not None:
        starts = np.asarray(start_nodes, dtype=np.int64)
    elif num_queries is None or num_queries >= num_nodes:
        starts = np.arange(num_nodes, dtype=np.int64)
    else:
        rng = np.random.default_rng(seed)
        starts = rng.choice(num_nodes, size=num_queries, replace=False).astype(np.int64)
        starts.sort()
    if starts.size and (starts.min() < 0 or starts.max() >= num_nodes):
        raise WalkSpecError("start nodes must be valid node ids")
    return [WalkQuery(query_id=i, start_node=int(s), max_length=walk_length) for i, s in enumerate(starts)]
