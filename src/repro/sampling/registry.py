"""Sampler registry: name → kernel factory.

Used by the benchmark harness and the baseline framework models to
instantiate kernels by their paper tags (ALS, ITS, RJS, RVS, eRJS, eRVS).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import SamplingError
from repro.sampling.alias import AliasSampler
from repro.sampling.base import Sampler
from repro.sampling.erjs import EnhancedRejectionSampler
from repro.sampling.ervs import EnhancedReservoirSampler
from repro.sampling.its import InverseTransformSampler
from repro.sampling.rejection import RejectionSampler
from repro.sampling.reservoir import ReservoirSampler

SAMPLERS: dict[str, Callable[[], Sampler]] = {
    "ALS": AliasSampler,
    "ITS": InverseTransformSampler,
    "RJS": RejectionSampler,
    "RVS": ReservoirSampler,
    "eRJS": EnhancedRejectionSampler,
    "eRVS": EnhancedReservoirSampler,
}


def sampler_names() -> list[str]:
    """All registered kernel tags."""
    return list(SAMPLERS.keys())


def make_sampler(name: str, **kwargs) -> Sampler:
    """Instantiate a sampling kernel by its tag (case-sensitive, as in the paper)."""
    factory = SAMPLERS.get(name)
    if factory is None:
        raise SamplingError(f"unknown sampler {name!r}; known: {', '.join(SAMPLERS)}")
    return factory(**kwargs)
