"""Tests for the kernel executor (query-to-lane scheduling)."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpusim.device import A6000
from repro.gpusim.executor import KernelExecutor


@pytest.fixture
def small_device():
    return dataclasses.replace(A6000, parallel_lanes=4, atomic_ns=0.0)


class TestExecuteBasics:
    def test_empty_batch(self, small_device):
        result = KernelExecutor(small_device).execute(np.array([]))
        assert result.time_ns == 0.0
        assert result.num_queries == 0

    def test_single_query_time_is_its_own_time(self, small_device):
        result = KernelExecutor(small_device).execute(np.array([42.0]))
        assert result.time_ns == pytest.approx(42.0)

    def test_total_work_is_sum(self, small_device):
        times = np.array([1.0, 2.0, 3.0])
        result = KernelExecutor(small_device).execute(times)
        assert result.total_work_ns == pytest.approx(6.0)

    def test_negative_times_rejected(self, small_device):
        with pytest.raises(SimulationError):
            KernelExecutor(small_device).execute(np.array([-1.0]))

    def test_unknown_scheduling_rejected(self, small_device):
        with pytest.raises(SimulationError):
            KernelExecutor(small_device).execute(np.array([1.0]), scheduling="magic")

    def test_two_dimensional_input_rejected(self, small_device):
        with pytest.raises(SimulationError):
            KernelExecutor(small_device).execute(np.ones((2, 2)))

    def test_time_units(self, small_device):
        result = KernelExecutor(small_device).execute(np.array([2_000_000.0]))
        assert result.time_ms == pytest.approx(2.0)
        assert result.time_s == pytest.approx(0.002)


class TestScheduling:
    def test_makespan_at_least_work_over_lanes(self, small_device):
        times = np.full(16, 10.0)
        result = KernelExecutor(small_device).execute(times, queue_atomic_ns=0.0)
        assert result.time_ns >= times.sum() / small_device.parallel_lanes

    def test_dynamic_beats_static_on_skewed_prefix(self, small_device):
        # All the heavy queries sit at the front: a static range split gives
        # the whole heavy block to lane 0, dynamic spreads them out.
        times = np.concatenate([np.full(4, 100.0), np.full(12, 1.0)])
        dynamic = KernelExecutor(small_device).execute(times, scheduling="dynamic", queue_atomic_ns=0.0)
        static = KernelExecutor(small_device).execute(times, scheduling="static")
        assert dynamic.time_ns < static.time_ns

    def test_dynamic_scheduling_charges_atomics(self):
        device = dataclasses.replace(A6000, parallel_lanes=2, atomic_ns=5.0)
        with_atomics = KernelExecutor(device).execute(np.full(8, 10.0), scheduling="dynamic")
        without = KernelExecutor(device).execute(np.full(8, 10.0), scheduling="dynamic", queue_atomic_ns=0.0)
        assert with_atomics.time_ns == pytest.approx(without.time_ns + 4 * 5.0)

    def test_lanes_capped_by_query_count(self, small_device):
        result = KernelExecutor(small_device).execute(np.array([5.0, 5.0]), queue_atomic_ns=0.0)
        assert result.lane_times_ns.size == 2

    def test_balanced_load_has_imbalance_one(self, small_device):
        result = KernelExecutor(small_device).execute(np.full(8, 10.0), queue_atomic_ns=0.0)
        assert result.load_imbalance == pytest.approx(1.0)
        assert result.utilization == pytest.approx(1.0)

    def test_imbalanced_load_detected(self, small_device):
        times = np.array([100.0] + [1.0] * 7)
        result = KernelExecutor(small_device).execute(times, queue_atomic_ns=0.0)
        assert result.load_imbalance > 1.5
        assert result.utilization < 1.0
