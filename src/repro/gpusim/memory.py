"""Memory footprint and out-of-memory modelling.

Several baselines in the paper fail with GPU out-of-memory on the largest
graphs (e.g. NextDoor on SK in Fig. 10, because it sorts queries by transit
node and the sort needs auxiliary buffers).  This module estimates the device
memory each framework would need on the *original* graph sizes — not the
scale models — so those OOM outcomes can be reproduced faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OutOfMemoryError
from repro.graph.csr import CSRGraph
from repro.gpusim.device import DeviceSpec


@dataclass(frozen=True)
class MemoryModel:
    """Per-framework device-memory footprint model.

    Attributes
    ----------
    graph_overhead:
        Multiplier on the raw CSR footprint (index + weight arrays).
    per_query_bytes:
        Working-state bytes per concurrent walk query (walker state, RNG
        state, output buffer slot).
    auxiliary_per_edge_bytes:
        Bytes of auxiliary structures proportional to the edge count — alias
        tables for Skywalker, CDF buffers for C-SAW, the transit-sorting
        buffers of NextDoor.
    """

    graph_overhead: float = 1.0
    per_query_bytes: int = 64
    auxiliary_per_edge_bytes: float = 0.0
    index_bytes: int = 4

    def required_bytes(
        self,
        num_nodes: int,
        num_edges: int,
        num_queries: int,
        weight_bytes: int = 4,
    ) -> int:
        """Device bytes needed for a graph of the given (paper-scale) size.

        GPU frameworks store CSR indices and property weights in 32-bit form
        by default (the paper-scale graphs would not fit otherwise); the
        INT8 extension drops ``weight_bytes`` to 1.
        """
        csr_bytes = (
            (num_nodes + 1) * 8
            + num_edges * self.index_bytes
            + num_edges * weight_bytes
        )
        return int(
            csr_bytes * self.graph_overhead
            + num_queries * self.per_query_bytes
            + num_edges * self.auxiliary_per_edge_bytes
        )

    def check_fits(
        self,
        device: DeviceSpec,
        num_nodes: int,
        num_edges: int,
        num_queries: int,
        weight_bytes: int = 4,
        label: str = "",
    ) -> int:
        """Return required bytes, raising :class:`OutOfMemoryError` on overflow."""
        needed = self.required_bytes(num_nodes, num_edges, num_queries, weight_bytes)
        if needed > device.memory_bytes:
            raise OutOfMemoryError(
                f"{label or 'kernel'} needs {needed / 1024**3:.1f} GiB but "
                f"{device.name} has {device.memory_bytes / 1024**3:.1f} GiB"
            )
        return needed

    @classmethod
    def for_graph(cls, graph: CSRGraph, **kwargs) -> int:
        """Convenience: raw footprint of an in-memory scale-model graph."""
        return graph.memory_footprint_bytes(**kwargs)
