"""Walk sessions: incremental submission, streaming results, exact collection.

A :class:`WalkSession` is the execute stage of the service pipeline
(compile → plan → execute).  It owns no graph state of its own — the
compiled workload, hint tables and transition cache live on the parent
:class:`~repro.service.WalkService` and are shared with every sibling
session — only the per-tenant run state: a
:class:`~repro.runtime.scheduler.DynamicQueryQueue` that accepts incremental
:meth:`~WalkSession.submit` calls, the wave execution driver, and the
accounting needed to reconstruct an exact
:class:`~repro.runtime.engine.WalkRunResult` at :meth:`~WalkSession.collect`
time.

**Exactness.**  Every walker owns a counter-based random stream keyed by its
query id, every walker's operation counts land in its own slot, and
termination rules are per-walker — so *how* queries are batched into waves
(one big submit, or many interleaved submit/stream rounds) cannot change any
path, counter total or per-query simulated time.  ``collect()`` therefore
re-prices the kernel over the full submission-ordered per-query time array
(and, for multi-device plans, re-partitions the full batch), producing
results bit-identical to the one-shot engine run over the same queries.  The
service parity suite enforces this for all four paper workloads in scalar,
batched and multi-device modes.

The one exemption — the same one the scalar/batched parity suite documents —
is ``selection="random"``: its selector flips coins from a *shared*
sequential generator, so which draw a walker sees depends on execution
order, and therefore on wave composition.  Every other selection policy
(``cost_model`` included) is a pure per-walker function and exact.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field, replace
from collections.abc import Iterator, Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import DeadlineExceeded, ServiceError
from repro.gpusim.counters import CostCounters, CounterBatch
from repro.gpusim.executor import KernelExecutor
from repro.rng.streams import StreamPool
from repro.runtime.engine import WalkRunResult
from repro.runtime.frontier import (
    ShardedRunAccounting,
    _merge_device_kernels,
    _partition_for_devices,
    iter_supersteps,
)
from repro.runtime.faults import resilient_supersteps
from repro.runtime.scheduler import DynamicQueryQueue, validate_queries
from repro.walks.state import WalkerFrontier, WalkQuery

if TYPE_CHECKING:  # pragma: no cover - service imports session
    from repro.service.scheduler import ServiceScheduler
    from repro.service.service import WalkService


@dataclass(frozen=True)
class SubmitOptions:
    """Scheduling knobs of one :meth:`WalkSession.submit` call, consolidated.

    All fields are meaningful on a scheduler-attached session (see
    :class:`~repro.service.scheduler.ServiceScheduler`); a standalone
    session executes its own queue in submission order and ignores them.

    Attributes
    ----------
    priority:
        Non-negative admission priority.  Anything above 0 enters the
        scheduler's SLO lane, which is admitted before the fair-share
        lanes (still within the in-flight walker budget).
    tenant:
        Tenant the submission is accounted to; ``None`` uses the tenant
        the session was attached under.
    deadline_steps:
        Scheduler supersteps a queued walker may wait before it is
        promoted to the SLO lane (``None`` = never promoted).
    block_on_full:
        When the in-flight walker budget (or the tenant's quota) has no
        room, run scheduler supersteps until it does instead of raising
        :class:`~repro.errors.QueueFull`.
    block_timeout:
        Wall-clock seconds a ``block_on_full`` submission may spend
        waiting for capacity before giving up with
        :class:`~repro.errors.QueueFull` after all (``None`` = wait
        forever).  Requires ``block_on_full=True``.
    deadline_ticks:
        Hard per-walker deadline: scheduler ticks after submission by
        which each walk must *complete*.  Expired walks — queued or in
        flight — are cancelled (releasing their budget) and the ticket's
        :meth:`QueryTicket.paths` raises
        :class:`~repro.errors.DeadlineExceeded`.  Contrast with
        ``deadline_steps``, which is soft (it only promotes a queued
        walker into the SLO lane).
    """

    priority: int = 0
    tenant: str | None = None
    deadline_steps: int | None = None
    block_on_full: bool = False
    block_timeout: float | None = None
    deadline_ticks: int | None = None

    def __post_init__(self) -> None:
        if self.priority < 0:
            raise ServiceError("submit priority must be non-negative")
        if self.deadline_steps is not None and self.deadline_steps < 1:
            raise ServiceError("deadline_steps must be at least 1 (or None)")
        if self.block_timeout is not None:
            if not self.block_on_full:
                raise ServiceError(
                    "block_timeout only bounds a blocking admission; "
                    "set block_on_full=True alongside it"
                )
            if self.block_timeout < 0:
                raise ServiceError("block_timeout must be non-negative (or None)")
        if self.deadline_ticks is not None and self.deadline_ticks < 1:
            raise ServiceError("deadline_ticks must be at least 1 (or None)")


#: Shared default so plain ``submit(queries)`` allocates nothing extra.
_DEFAULT_SUBMIT_OPTIONS = SubmitOptions()


@dataclass(frozen=True)
class WalkChunk:
    """A batch of walks that completed together, emitted by ``stream()``.

    Frontier backends emit one chunk per superstep that completed at least
    one walk (``steps``/``counters`` then describe the whole superstep);
    the scalar backend emits one chunk per finished walk.

    Attributes
    ----------
    sequence:
        Chunk ordinal within the session (0-based, monotonically increasing
        across waves).
    superstep:
        Session-wide ordinal of the superstep (or scalar walk) that
        produced the chunk.
    query_ids / paths:
        The completed walks, paired index-by-index.
    steps:
        Walker-steps charged by the producing superstep (scalar: by the
        producing walk).
    counters:
        Operation counts charged by the producing superstep (scalar: by the
        producing walk, including its queue fetch).
    pending:
        Walks still queued or in flight after this chunk.
    enqueue_steps / first_scheduled_steps:
        Per completed walk (aligned with ``query_ids``): the session
        superstep ordinal at which the walk was submitted, and the ordinal
        at which it was first claimed for execution.  On a
        scheduler-attached session both are scheduler superstep ordinals
        (the same clock as ``superstep``), so ticket latency is
        ``superstep - enqueue_steps[i]`` and queue delay is
        ``first_scheduled_steps[i] - enqueue_steps[i]`` — no private wave
        state needed.
    """

    sequence: int
    superstep: int
    query_ids: tuple[int, ...]
    paths: tuple[tuple[int, ...], ...]
    steps: int
    counters: CostCounters
    pending: int
    enqueue_steps: tuple[int, ...] = ()
    first_scheduled_steps: tuple[int, ...] = ()

    def __len__(self) -> int:
        return len(self.query_ids)


@dataclass(frozen=True)
class QueryTicket:
    """Receipt for one :meth:`WalkSession.submit` call.

    Tickets are how a caller correlates incremental submissions with
    streamed results: they expose the submitted query ids, a coarse status,
    and — once every query of the ticket completed — the finished walks.
    """

    ticket_id: int
    query_ids: tuple[int, ...]
    _session: WalkSession = field(repr=False, compare=False)

    @property
    def status(self) -> str:
        """``"queued"``, ``"running"``, ``"done"`` or ``"cancelled"``.

        ``"cancelled"`` wins whenever *any* of the ticket's walks was
        dropped before completing (explicit :meth:`cancel`, an expired
        ``deadline_ticks``, load shedding, stream abandonment or a
        quarantined fusion group).
        """
        if any(q in self._session._cancelled_ids for q in self.query_ids):
            return "cancelled"
        done = sum(1 for q in self.query_ids if q in self._session._path_by_qid)
        if done == len(self.query_ids):
            return "done"
        claimed = self._session._claimed_ids
        if any(q in claimed for q in self.query_ids):
            return "running"
        return "queued"

    @property
    def done(self) -> bool:
        return self.status == "done"

    def cancel(self) -> int:
        """Cancel this ticket's unfinished walks, releasing their budget.

        Queued walks leave the admission queues; in-flight walks are
        terminated at the next superstep boundary.  Either way the
        scheduler's in-flight budget and the tenant's quota headroom are
        restored immediately and the tenant's ``dead_letters`` count
        grows.  Returns the number of walks actually cancelled (walks
        that already completed keep their results).  Only meaningful on
        a scheduler-attached session — a standalone session executes its
        queue synchronously, so there is nothing to cancel.
        """
        scheduler = self._session._scheduler
        if scheduler is None:
            raise ServiceError(
                "cancel() requires a scheduler-attached session; a standalone "
                "session has no admission queue to cancel from"
            )
        return scheduler._cancel_queries(
            self._session, self.query_ids, reason="cancelled"
        )

    def paths(self) -> list[list[int]]:
        """The completed walks of this ticket, in submission order.

        Raises :class:`~repro.errors.DeadlineExceeded` if any of the
        ticket's walks was dropped by a ``deadline_ticks`` expiry or by
        load shedding, :class:`~repro.errors.ServiceError` if it was
        cancelled another way or is still pending — stream or collect
        first.
        """
        session = self._session
        dropped = [q for q in self.query_ids if q in session._cancelled_ids]
        if dropped:
            reasons = sorted({session._cancelled_ids[q] for q in dropped})
            detail = (
                f"ticket {self.ticket_id}: {len(dropped)} of its "
                f"{len(self.query_ids)} walks were dropped before completing "
                f"({', '.join(reasons)})"
            )
            if "deadline" in reasons or "shed" in reasons:
                raise DeadlineExceeded(detail)
            raise ServiceError(detail)
        if not self.done:
            raise ServiceError(
                f"ticket {self.ticket_id} is {self.status}; "
                "drain stream() or call collect() before reading its paths"
            )
        return [list(self._session._path_by_qid[q]) for q in self.query_ids]


class _Wave:
    """One claimed batch of queries executing through a single frontier."""

    __slots__ = (
        "queries", "offset", "per_ns", "counts", "frontier", "iterator",
        "faults", "pool", "pos", "steps_done",
    )

    def __init__(self, queries: list[WalkQuery], offset: int) -> None:
        self.queries = queries
        self.offset = offset  # global submission position of queries[0]
        self.per_ns: np.ndarray | None = None
        self.counts: dict[str, np.ndarray] = {}
        # Batched backend: a live superstep generator over `frontier`.
        self.frontier: WalkerFrontier | None = None
        self.iterator = None
        # Fault-tolerant plans: the wave's FaultRuntime (None when the plan
        # negotiated neither fault injection nor checkpointing).  When set,
        # `iterator` yields (ordinal, report, replayed) triples.
        self.faults = None
        # Scalar backend: the wave's stream pool and a query cursor.
        self.pool: StreamPool | None = None
        self.pos = 0
        # Sharded plans: the wave-local superstep ordinal (== every wave
        # walker's step index, the canonical task/batch key of the sharded
        # accounting).
        self.steps_done = 0


class WalkSession:
    """One tenant's walk execution over a shared :class:`WalkService`.

    Built by :meth:`WalkService.session` — not directly — from the
    compile/plan stages' outputs.  The public surface is small:

    * :meth:`submit` — enqueue more queries, get a :class:`QueryTicket`;
    * :meth:`stream` — iterate :class:`WalkChunk`s as walks complete;
    * :meth:`collect` — drain everything and return the exact
      :class:`~repro.runtime.engine.WalkRunResult` the one-shot engine
      would have produced for the same queries.

    Sessions are single-threaded (the whole simulator is); interleaving
    ``submit`` and ``stream`` from one thread is fully supported and cannot
    change any walk.
    """

    def __init__(
        self,
        service: WalkService,
        spec,
        config,
        plan,
        compiled,
        profile,
        cost_model,
        selector,
        engine,
        graph_version: int = 0,
    ) -> None:
        self.service = service
        self.spec = spec
        self.config = config
        self.plan = plan
        self.compiled = compiled
        self.profile = profile
        self.cost_model = cost_model
        self.selector = selector
        self.engine = engine
        # The graph version this session executes on, fixed at open time: a
        # later WalkService.apply_delta never retargets an open session (its
        # engine, compiled workload and caches stay bound to this version's
        # snapshot), and the scheduler refuses to fuse sessions across
        # versions.  Set by WalkService.session alongside the registry pins
        # (_unpin_finalizer releases them when the session is collected).
        self.graph_version = graph_version
        self._unpin_finalizer = None

        self._queue = DynamicQueryQueue()
        self._submitted: list[WalkQuery] = []
        self._seen_ids: set[int] = set()
        self._claimed_ids: set[int] = set()
        self._tickets: list[QueryTicket] = []
        self._path_by_qid: dict[int, list[int]] = {}
        # Walks dropped before completing, qid -> reason ("cancelled",
        # "deadline", "shed", "abandoned" or "quarantined").  Only the
        # scheduler cancels; a standalone session never populates this.
        self._cancelled_ids: dict[int, str] = {}

        # Finalised accounting, one entry per executed wave (concatenated at
        # collect time, in submission order).  The per-query counter matrix
        # exists only to reconstruct exact per-device aggregates over the
        # full-batch partition at collect time, so single-device plans skip
        # it entirely (collect() then needs only the aggregate totals).
        # Sharded plans skip it too: their per-device accounting follows the
        # walkers around and is folded per superstep by the shard ledger.
        self._sharded = plan.num_devices > 1 and plan.graph_placement == "sharded"
        self._shard_acct = (
            ShardedRunAccounting(
                engine, engine._sharded_graph(), ghost=engine._ghost_cache()
            )
            if self._sharded
            else None
        )
        self._track_counts = plan.num_devices > 1 and not self._sharded
        self._paths: list[list[int]] = []
        self._ns_chunks: list[np.ndarray] = []
        self._count_chunks: dict[str, list[np.ndarray]] = {
            name: [] for name in CostCounters._COUNT_FIELDS
        }
        self._aggregate = CostCounters(bytes_per_weight=engine.weight_bytes)
        self._usage: dict[str, int] = {}
        self._total_steps = 0
        self._executed = 0
        self._supersteps = 0
        self._chunks_emitted = 0
        self._exec_seconds = 0.0
        self._wave: _Wave | None = None
        # Fault-tolerance ledger, folded from each finalised wave's
        # FaultRuntime (a scheduler-attached session's ledger instead lives
        # on its fusion group; see ServiceScheduler.recovery_time_ns).
        self._recovery_ns = 0.0
        self._checkpoints_taken = 0
        self._degraded: set[int] = set()

        # Queue-delay bookkeeping surfaced through WalkChunk: the superstep
        # ordinal each query was submitted at and first claimed at.  On a
        # scheduler-attached session these hold scheduler tick ordinals.
        self._enqueue_step_by_qid: dict[int, int] = {}
        self._start_step_by_qid: dict[int, int] = {}
        # Set by ServiceScheduler.attach(); while attached, submit routes
        # through the scheduler's admission queues and stream()/collect()
        # drive the shared continuous-batching loop.
        self._scheduler: ServiceScheduler | None = None

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        queries: Sequence[WalkQuery],
        *legacy_args,
        options: SubmitOptions | None = None,
        **legacy_kwargs,
    ) -> QueryTicket:
        """Enqueue walk queries and return a ticket tracking them.

        Scheduling knobs travel in one keyword-only frozen
        :class:`SubmitOptions` — ``submit(queries, options=SubmitOptions(...))``.
        Plain ``submit(queries)`` is unchanged.  The legacy spellings —
        options passed positionally, or loose ``priority=``/``tenant=``/
        ``deadline_steps=``/``block_on_full=`` keywords — keep working but
        emit :class:`DeprecationWarning`.

        On a standalone session queries execute in submission order; on a
        scheduler-attached session they enter the tenant's admission queue
        and may raise :class:`~repro.errors.QueueFull` (backpressure).
        Query ids must be unique across the whole session lifetime (each id
        owns one random stream); duplicates raise
        :class:`~repro.errors.ServiceError`.
        """
        options = self._resolve_submit_options(legacy_args, options, legacy_kwargs)
        queries = list(queries)
        if not queries:
            raise ServiceError("no walk queries to submit")
        validate_queries(queries, self.service.graph.num_nodes)
        clashes = [q.query_id for q in queries if q.query_id in self._seen_ids]
        if clashes:
            raise ServiceError(
                f"query ids {clashes[:5]} were already submitted to this session; "
                "ids must be unique per session (each id owns one random stream)"
            )
        if self._scheduler is not None:
            # Backpressure before any session state mutates: a QueueFull
            # submission must leave the session exactly as it was.
            self._scheduler._reserve_capacity(self, len(queries), options)
        self._seen_ids.update(q.query_id for q in queries)
        self._submitted.extend(queries)
        ticket = QueryTicket(
            ticket_id=len(self._tickets),
            query_ids=tuple(q.query_id for q in queries),
            _session=self,
        )
        self._tickets.append(ticket)
        if self._scheduler is not None:
            self._scheduler._enqueue(self, queries, options)
        else:
            enqueue_step = self._supersteps
            for q in queries:
                self._enqueue_step_by_qid[q.query_id] = enqueue_step
            self._queue.extend(queries)
        return ticket

    @staticmethod
    def _resolve_submit_options(legacy_args, options, legacy_kwargs) -> SubmitOptions:
        """Fold the legacy submit spellings into one :class:`SubmitOptions`."""
        if legacy_args:
            if len(legacy_args) > 1:
                raise TypeError(
                    f"submit() takes one positional argument (queries); "
                    f"got {1 + len(legacy_args)}"
                )
            if options is not None or legacy_kwargs:
                raise TypeError(
                    "submit() got options both positionally and by keyword"
                )
            warnings.warn(
                "passing submit options positionally is deprecated; "
                "use submit(queries, options=SubmitOptions(...))",
                DeprecationWarning,
                stacklevel=3,
            )
            options = legacy_args[0]
        if legacy_kwargs:
            unknown = set(legacy_kwargs) - {
                "priority", "tenant", "deadline_steps", "block_on_full",
            }
            if unknown:
                raise TypeError(
                    f"submit() got unexpected keyword arguments {sorted(unknown)}"
                )
            if options is not None:
                raise TypeError(
                    "submit() got both options= and loose scheduling keywords"
                )
            warnings.warn(
                "loose submit scheduling keywords are deprecated; "
                "use submit(queries, options=SubmitOptions(...))",
                DeprecationWarning,
                stacklevel=3,
            )
            options = SubmitOptions(**legacy_kwargs)
        if options is None:
            return _DEFAULT_SUBMIT_OPTIONS
        if not isinstance(options, SubmitOptions):
            raise TypeError(
                f"options must be a SubmitOptions, not {type(options).__name__}"
            )
        return options

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the session's registry pins (idempotent).

        This also happens automatically when the session is garbage
        collected, but sessions participate in reference cycles with their
        tickets, so *when* that fires is the cyclic collector's business.
        Call ``close()`` to make the service's eviction (and delta
        migration) eligibility deterministic.  The session object stays
        usable — its engine holds every cache it needs directly — but its
        shared registry entries may be evicted or migrated from under the
        service afterwards.
        """
        if self._unpin_finalizer is not None:
            self._unpin_finalizer()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def pending(self) -> int:
        """Walks still queued or in flight."""
        if self._scheduler is not None:
            return self._scheduler._session_pending(self)
        in_flight = 0
        if self._wave is not None:
            if self._wave.frontier is not None:
                in_flight = int(self._wave.frontier.active_indices().size)
            else:
                in_flight = len(self._wave.queries) - self._wave.pos
        return self._queue.remaining + in_flight

    @property
    def completed(self) -> int:
        """Walks that have finished."""
        return len(self._path_by_qid)

    @property
    def tickets(self) -> tuple[QueryTicket, ...]:
        return tuple(self._tickets)

    def describe(self) -> dict[str, object]:
        """Summary of the session's compiled/planned state."""
        return {
            "workload": self.spec.describe(),
            "granularity": self.compiled.granularity.name,
            "compiler_supported": self.compiled.supported,
            "compiler_warnings": list(self.compiled.analysis.warnings),
            "edge_cost_ratio": self.cost_model.edge_cost_ratio,
            "selector": self.selector.name,
            "device": self.engine.device.name,
            "graph_version": self.graph_version,
            "plan": self.plan.describe(),
            "submitted": len(self._submitted),
            "completed": self.completed,
            "pending": self.pending,
        }

    # ------------------------------------------------------------------ #
    # Execution: streaming
    # ------------------------------------------------------------------ #
    def stream(self) -> Iterator[WalkChunk]:
        """Yield walks as they complete, chunked by the plan's granularity.

        The generator is resumable and interleavable: breaking out
        mid-stream leaves the in-flight wave suspended (a later ``stream()``
        or ``collect()`` resumes it exactly where it stopped), and queries
        submitted between chunks are claimed as soon as the current wave
        drains.  Returns when no queued or in-flight work remains.

        On a scheduler-attached session the chunks come from the shared
        continuous-batching loop instead of a private wave: each iteration
        advances *every* attached session's walkers by one fused superstep
        and yields this session's completions.
        """
        if self._scheduler is not None:
            yield from self._scheduler._stream_session(self)
            return
        while True:
            if self._wave is None and not self._begin_wave():
                return
            chunk = self._advance_once()
            if chunk is not None:
                yield chunk

    def collect(self) -> WalkRunResult:
        """Drain all pending work and return the exact aggregate result.

        Bit-identical — paths, counter totals, per-query and kernel
        simulated times — to a one-shot ``WalkEngine.run`` over every query
        submitted so far, whatever submit/stream interleaving preceded it
        (exemption: the ``random`` selection policy's shared-generator coin
        flips are execution-order dependent, exactly as in the
        scalar/batched parity suite).  Can be called repeatedly; later
        calls cover later submissions too.
        """
        for _ in self.stream():
            pass
        if self._executed == 0:
            raise ServiceError("no walk queries were submitted to this session")

        engine = self.engine
        per_query_ns = np.concatenate(self._ns_chunks)
        aggregate = self._aggregate.copy()
        executor = KernelExecutor(engine.device)

        if self._sharded:
            # The shard ledger already attributed every fetch and every
            # walker-step to the device owning the node it executed on
            # (tasks keyed canonically, so wave composition cannot change
            # the schedules); kernels just re-materialise from it.
            device_kernels = self._shard_acct.device_kernels(engine.scheduling)
            kernel = _merge_device_kernels(
                engine, device_kernels, aggregate, len(self._submitted)
            )
            num_devices = self.plan.num_devices
            partition_policy = self.plan.partition_policy
        elif self.plan.num_devices > 1:
            partitions = _partition_for_devices(engine, self._submitted)
            counts = {
                name: np.concatenate(chunks)
                for name, chunks in self._count_chunks.items()
            }
            device_kernels = []
            for part in partitions:
                agg = CostCounters(bytes_per_weight=engine.weight_bytes)
                for name, column in counts.items():
                    setattr(agg, name, int(column[part].sum()))
                device_kernels.append(
                    executor.execute(
                        per_query_ns[part], counters=agg, scheduling=engine.scheduling
                    )
                )
            kernel = _merge_device_kernels(
                engine, device_kernels, aggregate, len(self._submitted)
            )
            num_devices = self.plan.num_devices
            partition_policy = self.plan.partition_policy
        else:
            kernel = executor.execute(
                per_query_ns,
                counters=aggregate,
                scheduling=engine.scheduling,
                recovery_ns=self._recovery_ns,
            )
            device_kernels = []
            num_devices = 1
            partition_policy = None
        if self._recovery_ns and num_devices > 1:
            # Multi-device kernels are merged from per-device schedules that
            # know nothing of the recovery ledger; recovery serialises after
            # everything (a restore cannot overlap the work it redoes), so
            # it lands on the merged kernel directly.
            kernel = replace(
                kernel,
                time_ns=kernel.time_ns + self._recovery_ns,
                recovery_ns=kernel.recovery_ns + self._recovery_ns,
            )

        result = WalkRunResult(
            paths=[list(p) for p in self._paths],
            per_query_ns=per_query_ns,
            counters=aggregate,
            kernel=kernel,
            sampler_usage=dict(self._usage),
            total_steps=self._total_steps,
            profile=self.profile,
            preprocess_time_ns=(
                self.compiled.preprocessing_time_ns if self.compiled is not None else 0.0
            ),
            num_devices=num_devices,
            partition_policy=partition_policy,
            device_kernels=device_kernels,
            graph_placement="sharded" if self._sharded else "replicated",
            shard_policy=self.plan.shard_policy if self._sharded else None,
            per_query_comm_ns=(
                self._shard_acct.per_query_comm_ns(len(self._submitted))
                if self._sharded
                else None
            ),
            comm_time_ns=(
                float(self._shard_acct.comm_ns.sum()) if self._sharded else 0.0
            ),
            remote_steps=self._shard_acct.remote_steps if self._sharded else 0,
            ghost_hits=self._shard_acct.ghost_hits if self._sharded else 0,
            migration_batches=(
                self._shard_acct.migration_batches if self._sharded else 0
            ),
            degraded_devices=tuple(sorted(self._degraded)),
            recovery_time_ns=self._recovery_ns,
            checkpoints_taken=self._checkpoints_taken,
            compiler_warnings=(
                tuple(self.compiled.analysis.warnings)
                if self.compiled is not None and not self.compiled.analysis.supported
                else ()
            ),
        )
        result.wall_clock_s = self._exec_seconds
        return result

    # ------------------------------------------------------------------ #
    # Wave machinery
    # ------------------------------------------------------------------ #
    def _begin_wave(self) -> bool:
        """Claim every queued query into a new wave; False when idle."""
        remaining = self._queue.remaining
        if remaining == 0:
            return False
        started = time.perf_counter()  # repro: ignore[internal/wall-clock]
        engine = self.engine
        queries = self._queue.fetch_batch(remaining)
        self._claimed_ids.update(q.query_id for q in queries)
        for q in queries:
            self._start_step_by_qid[q.query_id] = self._supersteps
        k = len(queries)
        wave = _Wave(queries, offset=self._executed)

        # Launch accounting: one queue atomic per claimed query, exactly as
        # the one-shot engine paths charge it.
        fetch = CounterBatch(k, bytes_per_weight=engine.weight_bytes)
        fetch.atomic_ops += 1
        self._aggregate.merge(fetch.totals())
        wave.per_ns = engine.device.lane_times_ns(fetch)
        if self._track_counts:
            wave.counts = {
                name: np.zeros(k, dtype=np.int64) for name in CostCounters._COUNT_FIELDS
            }
            wave.counts["atomic_ops"] += 1

        if self._sharded:
            starts = np.array([q.start_node for q in queries], dtype=np.int64)
            self._shard_acct.charge_fetch(starts, wave.per_ns, offset=wave.offset)

        if self.plan.execution == "batched":
            wave.frontier = WalkerFrontier(queries)
            pool = StreamPool(engine.seed)
            streams = pool.batch([q.query_id for q in queries])
            wave.faults = engine._fault_runtime(num_devices=self.plan.num_devices)
            if wave.faults is None:
                wave.iterator = iter_supersteps(
                    engine, wave.frontier, streams, wave.per_ns,
                    self._aggregate, self._usage,
                )
            else:
                # Fault-tolerant wave: same superstep loop wrapped in the
                # recovery protocol (checkpoints every plan interval,
                # transient retries, restore-and-replay after a device
                # failure).  The plan's superstep ordinals restart per wave
                # — each wave is an independent run of the fault schedule.
                wave.iterator = resilient_supersteps(
                    engine, wave.faults, wave.frontier, pool, streams,
                    wave.per_ns, self._aggregate, self._usage,
                    track_finished=True,
                )
        else:
            # Scalar backend: the wave is interpreted one query at a time;
            # per_ns already holds each query's fetch cost, which
            # _scalar_walk accumulates step costs onto.
            wave.pool = StreamPool(engine.seed)
        self._wave = wave
        self._exec_seconds += time.perf_counter() - started  # repro: ignore[internal/wall-clock]
        return True

    def _advance_once(self) -> WalkChunk | None:
        """Advance the in-flight wave by one superstep (or one scalar walk).

        Returns the resulting chunk, or ``None`` when the superstep
        completed no walk or the wave just finalised.
        """
        if self.plan.execution == "batched":
            return self._advance_batched()
        return self._advance_scalar()

    def _advance_batched(self) -> WalkChunk | None:
        wave = self._wave
        started = time.perf_counter()  # repro: ignore[internal/wall-clock]
        try:
            item = next(wave.iterator)
        except StopIteration:
            self._finalize_wave()
            self._exec_seconds += time.perf_counter() - started  # repro: ignore[internal/wall-clock]
            return None
        if wave.faults is not None:
            _, report, replayed = item
            if replayed:
                # Bit-identical re-execution after a restore: the first
                # pass already accounted this superstep (shard ledger,
                # per-walker counts, emitted chunks), so only the replay
                # makespan — charged to the recovery ledger inside
                # resilient_supersteps — is new.
                self._exec_seconds += time.perf_counter() - started  # repro: ignore[internal/wall-clock]
                return None
        else:
            report = item

        if self._sharded:
            self._shard_acct.observe(
                report,
                wave.frontier,
                step_ordinal=wave.steps_done,
                offset=wave.offset,
            )
            wave.steps_done += 1
        if self._track_counts and report.active.size:
            for name in CostCounters._COUNT_FIELDS:
                column = getattr(report.counters, name)
                if column.any():
                    wave.counts[name][report.active] += column
        self._total_steps += report.steps
        self._supersteps += 1
        self._exec_seconds += time.perf_counter() - started  # repro: ignore[internal/wall-clock]

        if report.finished.size == 0:
            return None
        frontier = wave.frontier
        paths = tuple(tuple(frontier.path(i)) for i in report.finished)
        query_ids = tuple(wave.queries[int(i)].query_id for i in report.finished)
        for qid, path in zip(query_ids, paths, strict=False):
            self._path_by_qid[qid] = list(path)
        return self._emit(
            query_ids, paths, steps=report.steps, counters=report.counters.totals()
        )

    def _advance_scalar(self) -> WalkChunk | None:
        wave = self._wave
        if wave.pos >= len(wave.queries):
            self._finalize_wave()
            return None
        started = time.perf_counter()  # repro: ignore[internal/wall-clock]
        engine = self.engine
        query = wave.queries[wave.pos]
        stream = wave.pool.stream(query.query_id)
        path, query_ns, query_counters, steps = engine._scalar_walk(
            query, stream, self._usage, start_ns=float(wave.per_ns[wave.pos])
        )
        self._aggregate.merge(query_counters)
        wave.per_ns[wave.pos] = query_ns
        if self._track_counts:
            for name in CostCounters._COUNT_FIELDS:
                wave.counts[name][wave.pos] += getattr(query_counters, name)
        self._total_steps += steps
        self._supersteps += 1
        self._path_by_qid[query.query_id] = list(path)
        wave.pos += 1
        self._exec_seconds += time.perf_counter() - started  # repro: ignore[internal/wall-clock]
        # The chunk's counters cover the whole walk, fetch included.
        chunk_counters = query_counters.copy()
        chunk_counters.atomic_ops += 1
        return self._emit(
            (query.query_id,), (tuple(path),), steps=steps, counters=chunk_counters
        )

    def _emit(
        self,
        query_ids,
        paths,
        steps: int,
        counters: CostCounters,
        superstep: int | None = None,
    ) -> WalkChunk:
        chunk = WalkChunk(
            sequence=self._chunks_emitted,
            superstep=self._supersteps - 1 if superstep is None else superstep,
            query_ids=query_ids,
            paths=paths,
            steps=steps,
            counters=counters,
            pending=self.pending,
            enqueue_steps=tuple(self._enqueue_step_by_qid.get(q, 0) for q in query_ids),
            first_scheduled_steps=tuple(
                self._start_step_by_qid.get(q, 0) for q in query_ids
            ),
        )
        self._chunks_emitted += 1
        return chunk

    def _finalize_wave(self) -> None:
        wave = self._wave
        # Every walk of the wave has been registered in _path_by_qid by the
        # chunk machinery (all completions are reported), so both backends
        # reuse those lists instead of materialising a second copy.
        self._paths.extend(self._path_by_qid[q.query_id] for q in wave.queries)
        self._ns_chunks.append(wave.per_ns)
        if self._track_counts:
            for name in CostCounters._COUNT_FIELDS:
                self._count_chunks[name].append(wave.counts[name])
        self._executed += len(wave.queries)
        if wave.faults is not None:
            self._recovery_ns += wave.faults.recovery_ns
            self._checkpoints_taken += wave.faults.checkpoints_taken
            self._degraded.update(wave.faults.degraded)
        self._wave = None
