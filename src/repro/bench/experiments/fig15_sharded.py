"""Sharded multi-GPU execution — locality partitioning and ghost caching.

The Fig. 15 experiment replicates the graph on every device, which bounds
the largest servable graph by one device's memory.  This companion
experiment measures the *graph-sharded* execution mode that lifts the
bound: the graph is split into per-device node shards
(:class:`~repro.graph.sharded.ShardedCSRGraph`) and each walker executes
every step on the device owning its current node, paying a modeled
interconnect transfer whenever a sampled step migrates to a remote shard.
Migrations taking the same (step, source, destination) lane coalesce into
one batched transfer, and each device overlaps that communication with its
compute.

For every dataset the experiment sweeps the full decomposition grid —
all three shard policies (``contiguous``, ``degree_balanced``,
``locality``) across 2, 4 and 8 devices — and reports, per cell,

* the *static* remote-edge fraction of the decomposition (the cut the
  partitioner minimises);
* the *walked* remote-edge ratio with the ghost cache off — the fraction
  of steps that actually migrated, which depends on the workload's visit
  distribution, not just the cut; and
* the ghost-hit ratio under a per-shard ghost budget of 1/8 of the graph
  footprint — the fraction of boundary crossings the degree-ranked ghost
  cache absorbed locally.

It also re-checks bit-identical parity against the replicated run per row
and records the plan negotiated for a fleet whose per-device memory cannot
hold the whole graph (the scenario the replicated design cannot express).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.bench.config import ExperimentConfig
from repro.bench.runner import prepare_graph, scaled_device_for
from repro.bench.tables import format_table
from repro.core.config import FlexiWalkerConfig
from repro.graph.sharded import SHARD_POLICIES, ShardedCSRGraph
from repro.service import DeviceFleet, WalkService
from repro.walks.registry import make_workload
from repro.walks.state import make_queries

WORKLOAD = "node2vec"
DATASETS = ("YT", "CP", "EU", "AB", "SK")
DEVICE_COUNTS = (2, 4, 8)


def ghost_budget_for(graph) -> int:
    """Per-shard ghost budget the sweep grants: 1/8 of the graph footprint."""
    return graph.memory_footprint_bytes() // 8


def run_experiment(config: ExperimentConfig | None = None) -> dict:
    """Sweep shard policies x device counts, with and without ghosting."""
    config = config or ExperimentConfig.quick()
    datasets = [d for d in DATASETS if d in config.datasets] or list(DATASETS[:2])
    rows: list[dict] = []

    for dataset in datasets:
        graph = prepare_graph(dataset, WORKLOAD, weights="uniform")
        queries = make_queries(
            graph.num_nodes,
            walk_length=config.walk_length,
            num_queries=min(config.num_queries, graph.num_nodes),
            seed=config.seed,
        )
        device = scaled_device_for("gpu", len(queries), config.waves)
        budget = ghost_budget_for(graph)

        # Negotiation check: a fleet whose devices cannot hold the whole
        # graph must be offered the sharded plan (reasons recorded).
        footprint = graph.memory_footprint_bytes()
        small = dataclasses.replace(device, memory_bytes=max(1, footprint // 2))
        small_service = WalkService(graph, fleet=DeviceFleet(small, max(DEVICE_COUNTS)))
        plan = small_service.plan_for(
            make_workload(WORKLOAD),
            FlexiWalkerConfig(device=small, num_devices=4, seed=config.seed),
        )

        service = WalkService(graph, fleet=DeviceFleet(device, max(DEVICE_COUNTS)))
        session = service.session(
            make_workload(WORKLOAD), FlexiWalkerConfig(device=device, seed=config.seed)
        )
        for num_devices in DEVICE_COUNTS:
            replicated = session.engine.with_devices(num_devices, "hash").run(queries)
            row: dict[str, object] = {
                "dataset": dataset,
                "devices": num_devices,
                "replicated_ms": replicated.time_ms,
                "negotiated_plan": plan.graph_placement,
            }
            parity = True
            for policy in SHARD_POLICIES:
                sharded = session.engine.with_devices(
                    num_devices, graph_placement="sharded", shard_policy=policy
                ).run(queries)
                ghosted = session.engine.with_devices(
                    num_devices,
                    graph_placement="sharded",
                    shard_policy=policy,
                    ghost_cache_bytes=budget,
                ).run(queries)
                parity = parity and all(
                    r.paths == replicated.paths
                    and np.array_equal(r.per_query_ns, replicated.per_query_ns)
                    and r.counters.as_dict() == replicated.counters.as_dict()
                    for r in (sharded, ghosted)
                )
                decomposition = ShardedCSRGraph.build(graph, num_devices, policy)
                row[f"static_remote_{policy}"] = decomposition.remote_edge_fraction()
                row[f"remote_ratio_{policy}"] = sharded.remote_edge_ratio
                row[f"ghost_hit_{policy}"] = ghosted.ghost_hit_ratio
                row[f"sharded_ms_{policy}"] = sharded.time_ms
                row[f"ghosted_ms_{policy}"] = ghosted.time_ms
                total = sharded.kernel.total_work_ns + sharded.comm_time_ns
                row[f"comm_share_{policy}"] = (
                    sharded.comm_time_ns / total if total > 0 else 0.0
                )
            row["base_parity"] = parity
            rows.append(row)

    return {
        "rows": rows,
        "config": config,
        "paper_reference": (
            "Fig. 15 companion: graph-sharded execution with locality-aware "
            "partitioning, coalesced walker migration and per-shard ghost "
            "caching (replicated-vs-sharded over 2/4/8 devices)"
        ),
    }


def format_result(result: dict) -> str:
    headers = (
        ["dataset", "devices", "replicated_ms"]
        + [f"sharded_ms_{p}" for p in SHARD_POLICIES]
        + [f"static_remote_{p}" for p in SHARD_POLICIES]
        + [f"remote_ratio_{p}" for p in SHARD_POLICIES]
        + [f"ghost_hit_{p}" for p in SHARD_POLICIES]
        + ["negotiated_plan", "base_parity"]
    )
    return format_table(
        headers,
        [[row[h] for h in headers] for row in result["rows"]],
        title=(
            "Sharded multi-GPU execution — static cut vs walked remote ratio "
            "vs ghost-hit ratio (2/4/8 devices, per-shard ghost budget = "
            "graph footprint / 8)"
        ),
        float_format="{:.3f}",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_result(run_experiment()))


if __name__ == "__main__":  # pragma: no cover
    main()
