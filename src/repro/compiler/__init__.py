"""Flexi-Compiler: compile-time analysis and specialisation of walk logic.

The CUDA FlexiWalker analyses the user's ``get_weight`` implementation with
Clang/LLVM to discover which expressions determine the transition weight,
allocates a bound-estimation granularity flag (PER_KERNEL / PER_STEP), and
generates ``preprocess`` / ``get_weight_max`` / ``get_weight_sum`` helper code
(Section 4.2).  This package performs the same pipeline on Python walk
specifications using the :mod:`ast` module:

* :mod:`repro.compiler.analyzer` — dependency checker + flag allocator over
  the ``get_weight`` syntax tree;
* :mod:`repro.compiler.preprocess` — per-node MAX/SUM aggregation of the
  indexed edge arrays (the generated ``preprocess()`` of Fig. 9d);
* :mod:`repro.compiler.generator` — builds the runtime helper callables and
  bundles everything into a :class:`CompiledWorkload`.

When the analyser meets constructs it cannot reason about (loops with
data-dependent exits, recursion, warp intrinsics, nested functions) it does
not fail: it flags the workload for the eRVS-only fallback, mirroring
Section 7.1.
"""

from repro.compiler.flags import BoundGranularity
from repro.compiler.analyzer import AnalysisResult, EdgeIndexedVariable, analyze_get_weight
from repro.compiler.preprocess import PreprocessResult, preprocess_graph
from repro.compiler.generator import CompiledWorkload, GeneratedHelpers, compile_workload

__all__ = [
    "BoundGranularity",
    "AnalysisResult",
    "EdgeIndexedVariable",
    "analyze_get_weight",
    "PreprocessResult",
    "preprocess_graph",
    "CompiledWorkload",
    "GeneratedHelpers",
    "compile_workload",
]
