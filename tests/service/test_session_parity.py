"""Session ↔ one-shot parity: collect() must be bit-identical to the engine.

The acceptance contract of the service redesign: for every paper workload
(deepwalk / node2vec / metapath / 2nd-order PageRank) and every backend
(scalar, batched, fused multi-device), ``WalkSession.collect()`` —
including after arbitrary submit/stream interleaving — reproduces the legacy
``WalkEngine.run`` output *bit for bit*: paths, per-kernel usage, counter
totals, per-query simulated times, kernel makespans, per-device kernels and
the simulated profiling/preprocessing overheads.  The deprecated
``FlexiWalker.run`` shim rides the same code path and is checked too.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.config import FlexiWalkerConfig
from repro.core.flexiwalker import FlexiWalker
from repro.gpusim.device import A6000
from repro.service import DeviceFleet, WalkService
from repro.walks.deepwalk import DeepWalkSpec
from repro.walks.metapath import MetaPathSpec
from repro.walks.node2vec import Node2VecSpec
from repro.walks.second_order_pr import SecondOrderPRSpec
from repro.walks.state import make_queries

DEVICE = dataclasses.replace(A6000, parallel_lanes=8)

SPEC_FACTORIES = {
    "deepwalk": DeepWalkSpec,
    "node2vec": Node2VecSpec,
    "metapath": lambda: MetaPathSpec(schema=(0, 1, 2)),
    "2nd_pr": SecondOrderPRSpec,
}

MODES = {
    "scalar": {"execution": "scalar"},
    "batched": {"execution": "batched"},
    "multi_device": {"execution": "batched", "num_devices": 4, "partition_policy": "balanced"},
    "multi_device_scalar": {"execution": "scalar", "num_devices": 3, "partition_policy": "range"},
}


def make_config(**overrides) -> FlexiWalkerConfig:
    return FlexiWalkerConfig(device=DEVICE, seed=3, **overrides)


def reference_run(graph, spec, config, queries):
    """The legacy path: a direct engine run (no session machinery involved)."""
    walker = FlexiWalker(graph, spec, config)
    return walker.engine.run(queries, profile=walker.profile)


def assert_bit_identical(result, reference):
    assert result.paths == reference.paths
    assert result.sampler_usage == reference.sampler_usage
    assert result.total_steps == reference.total_steps
    assert result.counters.as_dict() == reference.counters.as_dict()
    assert np.array_equal(result.per_query_ns, reference.per_query_ns)
    assert result.kernel.time_ns == reference.kernel.time_ns
    assert result.kernel.total_work_ns == reference.kernel.total_work_ns
    assert [k.time_ns for k in result.device_kernels] == [
        k.time_ns for k in reference.device_kernels
    ]
    assert [k.counters.as_dict() for k in result.device_kernels] == [
        k.counters.as_dict() for k in reference.device_kernels
    ]
    # Simulated overheads: profiling + preprocessing (Table 3).
    assert result.preprocess_time_ns == reference.preprocess_time_ns
    assert result.overhead_ms == reference.overhead_ms


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestCollectParity:
    @pytest.mark.parametrize("workload", sorted(SPEC_FACTORIES))
    @pytest.mark.parametrize("mode", sorted(MODES))
    def test_single_submit_collect_is_bit_identical(self, service_graph, workload, mode):
        config = make_config(**MODES[mode])
        queries = make_queries(service_graph.num_nodes, walk_length=6, num_queries=24, seed=3)
        reference = reference_run(service_graph, SPEC_FACTORIES[workload](), config, queries)

        service = WalkService(service_graph, fleet=DeviceFleet(DEVICE, config.num_devices))
        session = service.session(SPEC_FACTORIES[workload](), config)
        session.submit(queries)
        assert_bit_identical(session.collect(), reference)

    @pytest.mark.parametrize("workload", sorted(SPEC_FACTORIES))
    @pytest.mark.parametrize("mode", sorted(MODES))
    def test_interleaved_submit_stream_collect_is_bit_identical(
        self, service_graph, workload, mode
    ):
        config = make_config(**MODES[mode])
        queries = make_queries(service_graph.num_nodes, walk_length=6, num_queries=24, seed=3)
        reference = reference_run(service_graph, SPEC_FACTORIES[workload](), config, queries)

        service = WalkService(service_graph, fleet=DeviceFleet(DEVICE, config.num_devices))
        session = service.session(SPEC_FACTORIES[workload](), config)
        # Three submissions with a partial stream drain between each.
        session.submit(queries[:7])
        stream = session.stream()
        next(stream, None)
        session.submit(queries[7:15])
        next(stream, None)
        session.submit(queries[15:])
        assert_bit_identical(session.collect(), reference)

    @pytest.mark.parametrize("mode", sorted(MODES))
    def test_flexiwalker_shim_is_bit_identical(self, service_graph, mode):
        config = make_config(**MODES[mode])
        queries = make_queries(service_graph.num_nodes, walk_length=6, num_queries=24, seed=3)
        walker = FlexiWalker(service_graph, Node2VecSpec(), config)
        reference = walker.engine.run(queries, profile=walker.profile)
        assert_bit_identical(walker.run_queries(queries), reference)

    def test_repeated_collect_covers_later_submissions(self, service_graph):
        config = make_config()
        queries = make_queries(service_graph.num_nodes, walk_length=5, num_queries=20, seed=3)
        reference = reference_run(service_graph, DeepWalkSpec(), config, queries)

        service = WalkService(service_graph, fleet=DeviceFleet(DEVICE, 1))
        session = service.session(DeepWalkSpec(), config)
        session.submit(queries[:8])
        first = session.collect()
        assert first.paths == reference.paths[:8]
        session.submit(queries[8:])
        assert_bit_identical(session.collect(), reference)
