"""Plain-text table rendering for experiment output.

Every experiment prints its result in the same row/column structure as the
corresponding paper table or figure, so a run of the benchmark suite can be
compared against the paper side by side (EXPERIMENTS.md records one such
comparison).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.4f}",
) -> str:
    """Render rows as an aligned ASCII table."""
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    str_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def format_mapping(values: Mapping[str, object], title: str | None = None) -> str:
    """Render a flat name → value mapping as a two-column table."""
    rows = [[key, value] for key, value in values.items()]
    return format_table(["metric", "value"], rows, title=title)
