"""Dynamic graphs: streaming edge updates against a live serving stack.

Real walk-serving deployments rarely get a frozen graph: edges stream in
(new follows, new citations) and out (deletions) while sessions are
mid-flight.  The delta-CSR overlay subsystem makes that safe without
rebuilding the CSR:

1. **Versioned updates** — ``service.apply_delta(additions, removals)``
   advances a monotonic ``graph_version``; each delta is an O(changes)
   overlay on the immutable base CSR, not an O(edges) rebuild.
2. **Session isolation** — a session opened at version ``v`` keeps
   executing against its version's snapshot for its whole life, even as
   newer deltas land; the continuous-batching scheduler never fuses
   sessions that sit on different versions.
3. **Scoped invalidation** — derived structures (transition caches, hint
   tables, shard decompositions) migrate across a delta by repairing only
   the touched nodes; everything untouched survives by object identity.
4. **Compaction** — ``compact()`` folds the overlay back into a flat CSR
   bit-identical to building the merged edge list from scratch, so
   long-running services can periodically re-baseline.
"""

from __future__ import annotations

import numpy as np

from repro import (
    DeepWalkSpec,
    DeltaCSRGraph,
    DeviceFleet,
    FlexiWalkerConfig,
    WalkService,
    make_queries,
)
from repro.graph.builders import from_edge_list
from repro.graph.generators import barabasi_albert_graph
from repro.graph.weights import uniform_weights
from repro.gpusim import A6000


def fresh_edges(rng: np.random.Generator, dynamic: DeltaCSRGraph, count: int):
    """Sample ``count`` edges that do not exist at the current version."""
    candidates = rng.integers(0, dynamic.num_nodes, size=(count * 10, 2))
    missing = ~dynamic.has_edges(candidates[:, 0], candidates[:, 1])
    return np.unique(candidates[missing], axis=0)[:count]


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. Wrap the base CSR in a delta overlay and serve it.  Static callers
    #    are unaffected: a plain CSRGraph still works everywhere.
    base = barabasi_albert_graph(200, 4, seed=7, name="social")
    base = base.with_weights(uniform_weights(base, seed=7))
    dynamic = DeltaCSRGraph(base)
    service = WalkService(dynamic, fleet=DeviceFleet(A6000, count=2))
    scheduler = service.scheduler()
    config = FlexiWalkerConfig(device=A6000)
    print(f"serving '{base.name}': {base.num_nodes} nodes, "
          f"{base.num_edges} edges, graph version {service.graph_version}")

    # 2. A tenant starts walking at version 0 under the continuous-batching
    #    scheduler.
    v0_session = scheduler.attach(service.session(DeepWalkSpec(), config),
                                  tenant="analytics")
    v0_session.submit(make_queries(service.graph.num_nodes, walk_length=12,
                                   num_queries=64, seed=1))
    for _ in range(3):
        scheduler.tick()
    v0_graph = service.graph

    # 3. Edge updates stream in mid-flight.  Each delta bumps the version
    #    and repairs derived caches for only the touched nodes.
    for _wave in range(2):
        additions = fresh_edges(rng, service.dynamic_graph, count=25)
        live = service.dynamic_graph.edge_list()[0]
        removals = np.unique(live[rng.choice(live.shape[0], 10, replace=False)],
                             axis=0)
        version = service.apply_delta(additions, removals,
                                      weights=rng.random(len(additions)))
        delta = service.dynamic_graph
        print(f"delta applied: +{len(additions)}/-{len(removals)} edges -> "
              f"graph version {version} "
              f"(overlay: {delta.num_delta_edges} added, "
              f"{delta.num_removed_edges} masked)")

    # 4. A second tenant joins at the new version; the in-flight v0 session
    #    is untouched and the two are never fused into one group.
    v2_session = scheduler.attach(service.session(DeepWalkSpec(), config),
                                  tenant="realtime")
    v2_session.submit(make_queries(service.graph.num_nodes, walk_length=12,
                                   num_queries=64, seed=2))
    scheduler.run_until_idle()
    result_v0, result_v2 = v0_session.collect(), v2_session.collect()
    print(f"session versions: analytics=v{v0_session.graph_version} "
          f"({len(result_v0.paths)} walks on its frozen snapshot: "
          f"{v0_session.engine.graph is v0_graph}), "
          f"realtime=v{v2_session.graph_version} "
          f"({len(result_v2.paths)} walks)")
    v0_session.close()
    v2_session.close()

    # 5. Periodic re-baseline: compaction is bit-identical to building the
    #    merged edge list from scratch.
    compacted = service.dynamic_graph.compact()
    edges, weights, _ = service.dynamic_graph.edge_list()
    rebuilt = from_edge_list(edges, num_nodes=compacted.num_nodes,
                             weights=weights, name=compacted.name)
    identical = (np.array_equal(compacted.indptr, rebuilt.indptr)
                 and np.array_equal(compacted.indices, rebuilt.indices)
                 and np.array_equal(compacted.weights, rebuilt.weights))
    print(f"compacted to {compacted.num_edges} edges; "
          f"bit-identical to fresh build: {identical}")
    print(f"service after serving: graph_version="
          f"{service.describe()['graph_version']}")


if __name__ == "__main__":
    main()
