"""Benchmark harness.

One experiment module per table/figure of the paper's evaluation section
lives in :mod:`repro.bench.experiments`; the shared machinery — scaled device
presets, system runners, result tables — lives here.  The ``benchmarks/``
directory at the repository root wraps each experiment in a pytest-benchmark
target, and every experiment module is also directly runnable
(``python -m repro.bench.experiments.table2_uniform``).
"""

from repro.bench.config import ExperimentConfig
from repro.bench.runner import (
    SystemRun,
    scaled_device_for,
    prepare_graph,
    prepare_queries,
    run_baseline,
    run_flexiwalker,
)
from repro.bench.tables import format_table, format_mapping

__all__ = [
    "ExperimentConfig",
    "SystemRun",
    "scaled_device_for",
    "prepare_graph",
    "prepare_queries",
    "run_baseline",
    "run_flexiwalker",
    "format_table",
    "format_mapping",
]
