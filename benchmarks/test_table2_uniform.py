"""Benchmark: Table 2 — all systems, five workloads, uniform property weights."""

from __future__ import annotations

from bench_helpers import run_once

from repro.bench.experiments import table2_uniform as experiment


def test_table2_uniform(benchmark, small_config):
    result = run_once(benchmark, experiment, small_config)
    summary = result["summary"]
    # Paper headline: FlexiWalker beats the best CPU baselines by a much
    # larger factor than the best GPU baselines, and both geomeans exceed 1.
    assert summary["geomean_speedup_over_best_gpu"] > 1.0
    assert summary["geomean_speedup_over_best_cpu"] > 5.0
    assert summary["geomean_speedup_over_best_cpu"] > summary["geomean_speedup_over_best_gpu"]
