"""Scheduler-level robustness: cancellation, deadlines, shedding, quarantine.

The continuous-batching scheduler must stay serviceable when individual
queries are cancelled, miss deadlines, are abandoned mid-stream, or when a
tenant's walk spec is actively crashing: budget is released, dead letters
are accounted per tenant, poisoned fusion groups are quarantined without
taking healthy tenants down, and fault-tolerant execution under the
scheduler stays bit-identical to the fault-free run.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.config import FlexiWalkerConfig
from repro.errors import DeadlineExceeded, QueueFull, ServiceError
from repro.gpusim.counters import CostCounters
from repro.gpusim.device import A6000
from repro.graph.generators import barabasi_albert_graph
from repro.graph.weights import uniform_weights
from repro.runtime.faults import DeviceFailure, FaultPlan, TransientFault
from repro.service import DeviceFleet, WalkService
from repro.service.session import SubmitOptions
from repro.walks.deepwalk import DeepWalkSpec
from repro.walks.state import WalkQuery

DEVICE = dataclasses.replace(A6000, parallel_lanes=8)
GRAPH = barabasi_albert_graph(40, 3, seed=5, name="robustness-test")
GRAPH = GRAPH.with_weights(uniform_weights(GRAPH, seed=5))
CONFIG = FlexiWalkerConfig(device=DEVICE, seed=3)


def queries(n, start=0, length=8):
    return [
        WalkQuery(
            query_id=start + i,
            start_node=(start + i) % GRAPH.num_nodes,
            max_length=length,
        )
        for i in range(n)
    ]


def service():
    return WalkService(GRAPH, fleet=DeviceFleet(DEVICE))


class PoisonSpec(DeepWalkSpec):
    """Dynamic spec whose batch update starts crashing after two calls."""

    name = "poison"
    is_dynamic = True
    calls = 0

    def update(self, graph, state, next_node):
        # Scalar counterpart of the poisoned batch hook, so the spec passes
        # whole-spec verification (update/update_batch overridden together)
        # and the scheduler accepts it — the crash is the point of the test.
        PoisonSpec.calls += 1
        if PoisonSpec.calls > 2:
            raise ValueError("boom")

    def update_batch(self, graph, frontier, indices, next_nodes):
        PoisonSpec.calls += 1
        if PoisonSpec.calls > 2:
            raise ValueError("boom")


class TestCancellation:
    def test_cancel_releases_queued_and_inflight(self):
        scheduler = service().scheduler(max_inflight_walkers=4)
        session = scheduler.session(DeepWalkSpec(), CONFIG, tenant="a")
        kept = session.submit(queries(3))
        scheduler.tick()
        doomed = session.submit(queries(6, start=100))  # part queued, part in flight
        cancelled = doomed.cancel()
        assert cancelled == 6
        assert doomed.status == "cancelled"
        with pytest.raises(ServiceError):
            doomed.paths()

        # The survivors still finish, and the ledger balances out.
        scheduler.run_until_idle(max_ticks=500)
        assert kept.done
        assert len(kept.paths()) == 3
        stats = scheduler.tenant_stats()["a"]
        assert stats.dead_letters == cancelled
        assert stats.inflight == 0
        assert stats.queued == 0
        assert scheduler.pending == 0
        assert len(session.collect().paths) == 3

    def test_cancel_is_idempotent(self):
        scheduler = service().scheduler()
        session = scheduler.session(DeepWalkSpec(), CONFIG)
        ticket = session.submit(queries(2))
        assert ticket.cancel() == 2
        assert ticket.cancel() == 0


class TestDeadlines:
    def test_deadline_ticks_expires_queued_walks(self):
        scheduler = service().scheduler(max_inflight_walkers=2)
        session = scheduler.session(DeepWalkSpec(), CONFIG)
        fast = session.submit(queries(2))
        slow = session.submit(queries(4, start=50), options=SubmitOptions(deadline_ticks=2))
        scheduler.run_until_idle(max_ticks=500)
        assert fast.done
        assert slow.status == "cancelled"
        with pytest.raises(DeadlineExceeded):
            slow.paths()

    def test_shed_after_ticks_cancels_stale_queue(self):
        scheduler = service().scheduler(max_inflight_walkers=2, shed_after_ticks=3)
        session = scheduler.session(DeepWalkSpec(), CONFIG)
        session.submit(queries(2, length=30))  # hogs the full budget for a while
        stale = session.submit(queries(4, start=20, length=30))
        for _ in range(6):
            scheduler.tick()
        assert stale.status == "cancelled"
        with pytest.raises(DeadlineExceeded):
            stale.paths()
        scheduler.run_until_idle(max_ticks=500)


class TestBlockingAdmission:
    def test_block_timeout_zero_raises_queue_full(self):
        scheduler = service().scheduler(max_inflight_walkers=2)
        session = scheduler.session(DeepWalkSpec(), CONFIG)
        session.submit(queries(2, length=200))
        scheduler.tick()
        with pytest.raises(QueueFull, match="timed out"):
            session.submit(
                queries(2, start=10, length=200),
                options=SubmitOptions(block_on_full=True, block_timeout=0.0),
            )

    def test_generous_timeout_admits_once_budget_frees(self):
        scheduler = service().scheduler(max_inflight_walkers=2)
        session = scheduler.session(DeepWalkSpec(), CONFIG)
        session.submit(queries(2, length=4))
        scheduler.tick()
        ticket = session.submit(
            queries(2, start=10, length=4),
            options=SubmitOptions(block_on_full=True, block_timeout=30.0),
        )
        scheduler.run_until_idle(max_ticks=500)
        assert ticket.done


class TestAbandonment:
    def test_closed_stream_releases_budget(self):
        scheduler = service().scheduler(max_inflight_walkers=4)
        abandoner = scheduler.session(DeepWalkSpec(), CONFIG, tenant="x")
        # One short walk so the stream yields an early chunk while the long
        # walkers are still mid-flight, then the consumer walks away.
        abandoner.submit(queries(1, length=3) + queries(3, start=1, length=30))
        iterator = abandoner.stream()
        next(iterator)
        assert scheduler.inflight > 0
        iterator.close()
        assert scheduler.inflight == 0
        assert scheduler.queued == 0

        # A second tenant gets the freed headroom and completes normally.
        newcomer = scheduler.session(DeepWalkSpec(), CONFIG, tenant="y")
        ticket = newcomer.submit(queries(4, start=200, length=5))
        scheduler.run_until_idle(max_ticks=500)
        assert ticket.done


class TestQuarantine:
    def test_poisoned_group_is_quarantined_without_collateral(self):
        PoisonSpec.calls = 0
        scheduler = service().scheduler()
        bad = scheduler.session(PoisonSpec(), CONFIG, tenant="bad")
        good = scheduler.session(DeepWalkSpec(), CONFIG, tenant="good")
        bad_ticket = bad.submit(queries(3, length=8))
        good_ticket = good.submit(queries(3, start=60, length=8))
        scheduler.run_until_idle(max_ticks=500)

        assert len(scheduler.quarantined) == 1
        assert bad_ticket.status == "cancelled"
        assert scheduler.tenant_stats()["bad"].dead_letters == 3
        with pytest.raises(ServiceError):
            bad.collect()

        # The healthy tenant never noticed.
        assert good_ticket.done
        assert len(good.collect().paths) == 3


class TestSchedulerFaultParity:
    def test_faulty_fused_run_is_bit_identical(self):
        plan = FaultPlan(
            seed=7,
            device_failures=(DeviceFailure(superstep=3),),
            transient_faults=(TransientFault(superstep=1),),
        )

        def run(config):
            scheduler = service().scheduler()
            session = scheduler.session(DeepWalkSpec(), config)
            session.submit(queries(5, length=10))
            for _ in range(4):
                scheduler.tick()
            session.submit(queries(5, start=40, length=10))  # mid-run admission
            scheduler.run_until_idle(max_ticks=500)
            return session.collect(), scheduler

        plain, _ = run(CONFIG)
        faulty, scheduler = run(
            dataclasses.replace(CONFIG, fault_plan=plan, checkpoint_interval=2)
        )
        assert faulty.paths == plain.paths
        assert np.array_equal(faulty.per_query_ns, plain.per_query_ns)
        for name in CostCounters._COUNT_FIELDS:
            assert getattr(faulty.counters, name) == getattr(plain.counters, name)
        assert faulty.total_steps == plain.total_steps
        assert scheduler.recovery_time_ns > 0
        assert scheduler.checkpoints_taken > 0
        assert scheduler.degraded_devices == (0,)

    def test_plain_session_surfaces_recovery_fields(self):
        svc = service()
        config = dataclasses.replace(
            CONFIG,
            fault_plan=FaultPlan(
                seed=4, device_failures=(DeviceFailure(superstep=4),)
            ),
            checkpoint_interval=2,
        )
        session = svc.session(DeepWalkSpec(), config)
        session.submit(queries(6, length=10))
        result = session.collect()
        assert result.degraded_devices == (0,)
        assert result.recovery_time_ns > 0
        assert result.checkpoints_taken > 0

        reference = svc.session(DeepWalkSpec(), FlexiWalkerConfig(device=DEVICE, seed=3))
        reference.submit(queries(6, length=10))
        assert result.paths == reference.collect().paths
