"""FlexiWalker reproduction.

A pure-Python reproduction of *FlexiWalker: Extensible GPU Framework for
Efficient Dynamic Random Walks with Runtime Adaptation* (EUROSYS '26).  The
GPU hardware is replaced by a cost-accounting execution simulator
(:mod:`repro.gpusim`); everything else — the optimised eRJS/eRVS kernels, the
first-order cost model, the compile-time specialisation and the baseline
systems — is implemented faithfully.

Quick start (serving API)::

    from repro import WalkService, Node2VecSpec, load_dataset, make_queries

    graph = load_dataset("YT", weights="uniform")
    service = WalkService(graph)
    session = service.session(Node2VecSpec())
    session.submit(make_queries(graph.num_nodes, walk_length=20))
    for chunk in session.stream():
        ...                       # walks as they complete, per superstep
    result = session.collect()    # exact aggregate
    print(result.time_ms, result.selection_ratio())

The legacy one-shot facade (``FlexiWalker(graph, spec).run(...)``) still
works and produces bit-identical results, but emits ``DeprecationWarning`` —
see ``MIGRATION.md``.
"""

from repro.analysis import Diagnostic, Severity, SourceSpan, SpecReport, verify_spec
from repro.baselines.base import BaselineSystem
from repro.bench.config import ExperimentConfig
from repro.bench.runner import SystemRun
from repro.compiler.analyzer import AnalysisResult, EdgeIndexedVariable
from repro.compiler.generator import CompiledWorkload, GeneratedHelpers
from repro.compiler.preprocess import PreprocessResult
from repro.core.config import FlexiWalkerConfig
from repro.core.flexiwalker import FlexiWalker
from repro.core.results import summarize_run
from repro.graph.csr import CSRGraph
from repro.graph.delta import DeltaCSRGraph, GraphDelta
from repro.graph.invalidation import DeltaInvalidation, graph_version
from repro.graph.sharded import (
    SHARD_POLICIES,
    GhostNodeCache,
    GraphShard,
    ShardedCSRGraph,
)
from repro.graph.datasets import DatasetSpec, load_dataset, dataset_names
from repro.gpusim.counters import CostCounters
from repro.gpusim.device import A6000, DeviceSpec
from repro.gpusim.energy import EnergyReport
from repro.gpusim.executor import KernelResult
from repro.gpusim.memory import MemoryModel
from repro.gpusim.multigpu import MultiGPUResult
from repro.runtime.cost_model import CostModel
from repro.runtime.engine import WalkEngine, WalkRunResult
from repro.runtime.faults import (
    DEFAULT_CHECKPOINT_INTERVAL,
    DeviceFailure,
    FaultPlan,
    InterconnectDrop,
    TransientFault,
)
from repro.runtime.frontier import SuperstepReport
from repro.runtime.profiler import ProfileResult
from repro.runtime.selector import DegreeThresholdRule
from repro.sampling.base import StepContext
from repro.sampling.batch import BatchStepContext
from repro.errors import DeadlineExceeded, FaultError, QueueFull
from repro.service import (
    BACKENDS,
    DeviceFleet,
    ExecutionPlan,
    QueryTicket,
    ServiceCapabilities,
    ServiceScheduler,
    SubmitOptions,
    TenantStats,
    WalkChunk,
    WalkService,
    WalkSession,
    negotiate_plan,
)
from repro.walks.deepwalk import DeepWalkSpec
from repro.walks.metapath import MetaPathSpec
from repro.walks.node2vec import Node2VecSpec, UnweightedNode2VecSpec
from repro.walks.second_order_pr import SecondOrderPRSpec
from repro.walks.spec import UniformWalkSpec, WalkSpec
from repro.walks.state import WalkerState, WalkQuery, make_queries

__version__ = "1.4.0"

__all__ = [
    # Serving API (the supported entry point)
    "WalkService",
    "WalkSession",
    "WalkChunk",
    "QueryTicket",
    "DeviceFleet",
    "ExecutionPlan",
    "ServiceCapabilities",
    "BACKENDS",
    "negotiate_plan",
    # Continuous batching (multi-tenant scheduler)
    "ServiceScheduler",
    "SubmitOptions",
    "TenantStats",
    "QueueFull",
    "DeadlineExceeded",
    # Fault tolerance (deterministic fault injection + checkpointing)
    "FaultPlan",
    "DeviceFailure",
    "TransientFault",
    "InterconnectDrop",
    "FaultError",
    "DEFAULT_CHECKPOINT_INTERVAL",
    # Legacy facade (deprecated spellings, kept for compatibility)
    "FlexiWalker",
    "summarize_run",
    # Configuration and results
    "FlexiWalkerConfig",
    "WalkEngine",
    "WalkRunResult",
    "SuperstepReport",
    "KernelResult",
    "MultiGPUResult",
    "CostCounters",
    "ProfileResult",
    "CostModel",
    "DegreeThresholdRule",
    "StepContext",
    "BatchStepContext",
    # Compiler artifacts
    "CompiledWorkload",
    "GeneratedHelpers",
    "AnalysisResult",
    "EdgeIndexedVariable",
    "PreprocessResult",
    # Static analysis (whole-spec verifier)
    "verify_spec",
    "SpecReport",
    "Diagnostic",
    "Severity",
    "SourceSpan",
    # Devices and simulator models
    "DeviceSpec",
    "A6000",
    "MemoryModel",
    "EnergyReport",
    # Baselines and benchmarking
    "BaselineSystem",
    "ExperimentConfig",
    "SystemRun",
    # Graphs (DeltaCSRGraph/GraphDelta: the dynamic-graph overlay subsystem)
    "CSRGraph",
    "DeltaCSRGraph",
    "GraphDelta",
    "DeltaInvalidation",
    "graph_version",
    "ShardedCSRGraph",
    "GraphShard",
    "GhostNodeCache",
    "SHARD_POLICIES",
    "DatasetSpec",
    "load_dataset",
    "dataset_names",
    # Workloads and queries
    "WalkSpec",
    "UniformWalkSpec",
    "Node2VecSpec",
    "UnweightedNode2VecSpec",
    "MetaPathSpec",
    "SecondOrderPRSpec",
    "DeepWalkSpec",
    "WalkQuery",
    "WalkerState",
    "make_queries",
    "__version__",
]
