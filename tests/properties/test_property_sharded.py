"""Property-based sharded-vs-replicated parity across the whole grid.

The sharded driver runs the identical fused superstep loop as the replicated
multi-device path; sharding only relocates where each step's work is
accounted and adds the modeled interconnect term.  So for *any* graph,
workload, seed, device count, shard policy and walk length, the two modes
must agree bit-for-bit on paths, counter totals (global and summed over
device kernels) and per-query base times — while the communication term
stays exactly the coalesced-batch bill (one interconnect latency per
(step, src, dst) migration batch plus the per-walker payload), and the
ghost cache only relabels boundary crossings as local hits, never touching
a walk.  Hypothesis hunts for counterexamples across that grid.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.generator import compile_workload
from repro.graph.generators import barabasi_albert_graph
from repro.graph.labels import random_edge_labels
from repro.graph.sharded import SHARD_POLICIES, ShardedCSRGraph
from repro.graph.weights import uniform_weights
from repro.gpusim.device import A6000
from repro.runtime.engine import WalkEngine
from repro.runtime.frontier import WALKER_MIGRATION_BYTES
from repro.runtime.selector import CostModelSelector
from repro.walks.deepwalk import DeepWalkSpec
from repro.walks.metapath import MetaPathSpec
from repro.walks.node2vec import Node2VecSpec
from repro.walks.state import make_queries

DEVICE = dataclasses.replace(A6000, parallel_lanes=8)

SPEC_FACTORIES = {
    "deepwalk": DeepWalkSpec,
    "node2vec": Node2VecSpec,
    "metapath": lambda: MetaPathSpec(schema=(0, 1, 2)),
}


def build_graph(seed: int):
    graph = barabasi_albert_graph(24 + (seed % 4) * 10, 3, seed=seed,
                                  name=f"sharded-prop-{seed}")
    graph = graph.with_weights(uniform_weights(graph, seed=seed))
    return graph.with_labels(random_edge_labels(graph, num_labels=4, seed=seed))


def build_engine(graph, spec, run_seed, **kwargs):
    compiled = compile_workload(spec, graph)
    return WalkEngine(
        graph=graph, spec=spec, device=DEVICE, seed=run_seed,
        selector=CostModelSelector(), compiled=compiled,
        selection_overhead=True, warp_switch_overhead=True, **kwargs,
    )


class TestShardedMatchesReplicated:
    @settings(max_examples=20, deadline=None)
    @given(
        graph_seed=st.integers(min_value=0, max_value=30),
        run_seed=st.integers(min_value=0, max_value=500),
        workload=st.sampled_from(sorted(SPEC_FACTORIES)),
        num_devices=st.sampled_from([2, 3, 4]),
        shard_policy=st.sampled_from(SHARD_POLICIES),
        walk_length=st.integers(min_value=1, max_value=6),
    )
    def test_sharded_equals_replicated_in_base_quantities(
        self, graph_seed, run_seed, workload, num_devices, shard_policy, walk_length
    ):
        graph = build_graph(graph_seed)
        spec = SPEC_FACTORIES[workload]()
        queries = make_queries(graph.num_nodes, walk_length=walk_length,
                               num_queries=min(16, graph.num_nodes), seed=run_seed)

        replicated = build_engine(graph, spec, run_seed,
                                  num_devices=num_devices).run(queries)
        sharded = build_engine(
            graph, spec, run_seed, num_devices=num_devices,
            graph_placement="sharded", shard_policy=shard_policy,
        ).run(queries)

        assert sharded.paths == replicated.paths
        assert sharded.sampler_usage == replicated.sampler_usage
        assert sharded.total_steps == replicated.total_steps
        assert sharded.counters.as_dict() == replicated.counters.as_dict()
        assert np.array_equal(sharded.per_query_ns, replicated.per_query_ns)

        # Per-device counters fold back to the placement-invariant totals.
        for name, total in replicated.counters.as_dict().items():
            assert sum(
                k.counters.as_dict()[name] for k in sharded.device_kernels
            ) == total

        # The communication term is exactly the coalesced-batch bill: one
        # interconnect latency per (step, src, dst) batch plus the payload
        # per migrating walker — never more than pricing each migration as
        # its own transfer, and every walk's migration count is bounded by
        # its step count.
        per_walker = WALKER_MIGRATION_BYTES / DEVICE.interconnect_bytes_per_ns
        expected = (
            sharded.migration_batches * DEVICE.interconnect_latency_ns
            + sharded.remote_steps * per_walker
        )
        assert sharded.comm_time_ns == pytest.approx(expected, rel=1e-12)
        assert sharded.migration_batches <= sharded.remote_steps
        migration = DEVICE.migration_time_ns(WALKER_MIGRATION_BYTES)
        assert sharded.comm_time_ns <= sharded.remote_steps * migration + 1e-6
        assert sharded.remote_steps <= sharded.total_steps
        assert np.all(sharded.per_query_comm_ns >= 0.0)
        assert float(sharded.per_query_comm_ns.sum()) == pytest.approx(
            sharded.comm_time_ns, rel=1e-12
        )

        # Remote steps are consistent with the walked paths and the shard
        # decomposition: recount boundary crossings directly from the walks.
        # (Only valid with the ghost cache off — hits leave the walker's
        # host behind its node's owner.)
        decomposition = ShardedCSRGraph.build(graph, num_devices, shard_policy)
        crossings = 0
        for path in sharded.paths:
            nodes = np.asarray(path, dtype=np.int64)
            owners = decomposition.owner(nodes)
            crossings += int(np.count_nonzero(owners[1:] != owners[:-1]))
        assert sharded.remote_steps == crossings

    @settings(max_examples=15, deadline=None)
    @given(
        graph_seed=st.integers(min_value=0, max_value=30),
        run_seed=st.integers(min_value=0, max_value=500),
        workload=st.sampled_from(sorted(SPEC_FACTORIES)),
        num_devices=st.sampled_from([2, 4]),
        shard_policy=st.sampled_from(SHARD_POLICIES),
        ghost_budget=st.sampled_from([2_000, 8_000, 10**9]),
        walk_length=st.integers(min_value=1, max_value=6),
    )
    def test_ghost_cache_preserves_walks_and_matches_host_replay(
        self, graph_seed, run_seed, workload, num_devices, shard_policy,
        ghost_budget, walk_length,
    ):
        graph = build_graph(graph_seed)
        spec = SPEC_FACTORIES[workload]()
        queries = make_queries(graph.num_nodes, walk_length=walk_length,
                               num_queries=min(16, graph.num_nodes), seed=run_seed)

        plain = build_engine(
            graph, spec, run_seed, num_devices=num_devices,
            graph_placement="sharded", shard_policy=shard_policy,
        ).run(queries)
        ghosted = build_engine(
            graph, spec, run_seed, num_devices=num_devices,
            graph_placement="sharded", shard_policy=shard_policy,
            ghost_cache_bytes=ghost_budget,
        ).run(queries)

        # Ghosting is pure accounting: the walks are untouched.
        assert ghosted.paths == plain.paths
        assert ghosted.counters.as_dict() == plain.counters.as_dict()
        assert np.array_equal(ghosted.per_query_ns, plain.per_query_ns)

        # Hits can only absorb migrations (host changes are a subsequence
        # of owner changes), and the hit ratio is a proper fraction.
        assert ghosted.remote_steps <= plain.remote_steps
        assert 0.0 <= ghosted.ghost_hit_ratio <= 1.0

        # Replay the host dynamics from the walked paths and the static
        # ghost mask: a crossing onto a cached node is a hit (host stays),
        # anything else migrates (host becomes the owner).
        decomposition = ShardedCSRGraph.build(graph, num_devices, shard_policy)
        ghost = decomposition.ghost_cache(ghost_budget)
        hits = migrations = 0
        for path in ghosted.paths:
            nodes = np.asarray(path, dtype=np.int64)
            owners = decomposition.owner(nodes)
            host = int(owners[0])
            for node, owner in zip(nodes[1:], owners[1:], strict=False):
                if int(owner) == host:
                    continue
                if ghost.mask[host, int(node)]:
                    hits += 1
                else:
                    migrations += 1
                    host = int(owner)
        assert ghosted.ghost_hits == hits
        assert ghosted.remote_steps == migrations
