"""Continuous-batching scheduler: fused execution must be bit-identical.

The acceptance contract of the multi-tenant scheduler: for N sessions
interleaved through one :class:`ServiceScheduler` — including two sessions
over the *same* workload fusing into one frontier, mid-flight submissions,
SLO priorities and a tight in-flight budget — every session's ``collect()``
must reproduce, bit for bit, the result of running that session alone on a
plain service: paths, sampler usage, counter totals, per-query simulated
times and kernel makespans.  Checked for batched single-device plans and
fused multi-device (replicated) plans.

The ``random`` selection policy keeps its documented exemption (its
selector's shared sequential generator makes coin flips execution-order
dependent, exactly as in the scalar/batched parity suite) and is therefore
not part of this matrix.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.config import FlexiWalkerConfig
from repro.errors import QueueFull, ServiceError
from repro.gpusim.device import A6000
from repro.service import DeviceFleet, SubmitOptions, WalkService
from repro.walks.deepwalk import DeepWalkSpec
from repro.walks.node2vec import Node2VecSpec
from repro.walks.state import WalkQuery

DEVICE = dataclasses.replace(A6000, parallel_lanes=8)

MODES = {
    "batched": {"fleet": 1, "config": {}},
    "multi_device": {
        "fleet": 4,
        "config": {"num_devices": 4, "partition_policy": "balanced"},
    },
}


def make_queries_block(base: int, count: int, num_nodes: int, length: int = 12):
    rng = np.random.default_rng(base)
    return [
        WalkQuery(
            query_id=base + i,
            start_node=int(rng.integers(0, num_nodes)),
            max_length=length,
        )
        for i in range(count)
    ]


def make_config(**overrides) -> FlexiWalkerConfig:
    return FlexiWalkerConfig(device=DEVICE, seed=3, **overrides)


def assert_bit_identical(result, reference) -> None:
    assert result.paths == reference.paths
    assert result.sampler_usage == reference.sampler_usage
    assert result.total_steps == reference.total_steps
    assert result.counters.__dict__ == reference.counters.__dict__
    assert np.array_equal(result.per_query_ns, reference.per_query_ns)
    assert result.kernel.time_ms == reference.kernel.time_ms
    assert len(result.device_kernels) == len(reference.device_kernels)
    for fused_kernel, solo_kernel in zip(result.device_kernels, reference.device_kernels, strict=False):
        assert fused_kernel.time_ms == solo_kernel.time_ms


def solo_result(graph, spec, config, batches):
    service = WalkService(graph, fleet=DeviceFleet(DEVICE, count=config.num_devices))
    session = service.session(spec, config)
    for batch in batches:
        session.submit(batch)
    return session.collect()


@pytest.mark.parametrize("mode", sorted(MODES))
def test_interleaved_sessions_bit_identical(service_graph, mode):
    """Three sessions (two fused), mid-flight submissions, an SLO lane and a
    finite budget — each collect() matches the session running alone."""
    setup = MODES[mode]
    config = make_config(**setup["config"])
    graph = service_graph
    n = graph.num_nodes

    batches = {
        "s1": [make_queries_block(1000, 10, n), make_queries_block(1100, 5, n)],
        "s2": [make_queries_block(2000, 6, n)],
        "s3": [make_queries_block(3000, 8, n)],
    }

    service = WalkService(graph, fleet=DeviceFleet(DEVICE, count=config.num_devices))
    scheduler = service.scheduler(max_inflight_walkers=64)
    scheduler.register_tenant("alpha", weight=2.0)
    scheduler.register_tenant("beta", weight=1.0)
    s1 = scheduler.session(DeepWalkSpec(), config, tenant="alpha")
    s2 = scheduler.session(DeepWalkSpec(), config, tenant="beta")  # fuses with s1
    s3 = scheduler.session(Node2VecSpec(), config, tenant="beta")  # its own group

    s1.submit(batches["s1"][0])
    s2.submit(batches["s2"][0], options=SubmitOptions(priority=1))
    for _ in range(3):
        scheduler.tick()
    s1.submit(batches["s1"][1])  # admitted mid-flight, no wave drain
    s3.submit(batches["s3"][0])
    chunks = list(s2.stream())  # interleaves draining with the others

    assert_bit_identical(s1.collect(), solo_result(graph, DeepWalkSpec(), config, batches["s1"]))
    assert_bit_identical(s2.collect(), solo_result(graph, DeepWalkSpec(), config, batches["s2"]))
    assert_bit_identical(s3.collect(), solo_result(graph, Node2VecSpec(), config, batches["s3"]))

    # The fused loop still reports per-chunk latency on the shared clock.
    for chunk in chunks:
        for enq, start in zip(chunk.enqueue_steps, chunk.first_scheduled_steps, strict=False):
            assert 0 <= enq <= start <= chunk.superstep

    assert scheduler.pending == 0
    stats = scheduler.tenant_stats()
    assert stats["alpha"].completed == 15
    assert stats["beta"].completed == 14
    assert stats["beta"].slo_admitted == 6
    total_steps = stats["alpha"].steps + stats["beta"].steps
    assert total_steps == sum(
        solo_result(graph, spec, config, b).total_steps
        for spec, b in [
            (DeepWalkSpec(), batches["s1"]),
            (DeepWalkSpec(), batches["s2"]),
            (Node2VecSpec(), batches["s3"]),
        ]
    )


def test_repeated_collect_covers_later_submissions(service_graph):
    config = make_config()
    graph = service_graph
    service = WalkService(graph, fleet=DeviceFleet(DEVICE))
    scheduler = service.scheduler()
    session = scheduler.session(DeepWalkSpec(), config)
    first = make_queries_block(1, 7, graph.num_nodes)
    second = make_queries_block(100, 4, graph.num_nodes)
    session.submit(first)
    session.collect()
    session.submit(second)
    result = session.collect()
    assert_bit_identical(result, solo_result(graph, DeepWalkSpec(), config, [first, second]))


def test_detach_returns_session_to_standalone(service_graph):
    config = make_config()
    graph = service_graph
    service = WalkService(graph, fleet=DeviceFleet(DEVICE))
    scheduler = service.scheduler()
    session = scheduler.session(DeepWalkSpec(), config)
    first = make_queries_block(1, 6, graph.num_nodes)
    second = make_queries_block(50, 5, graph.num_nodes)
    session.submit(first)
    scheduler.tick()  # leave work in flight; detach must drain it
    scheduler.detach(session)
    assert session.pending == 0
    session.submit(second)  # standalone wave execution from here on
    assert_bit_identical(
        session.collect(), solo_result(graph, DeepWalkSpec(), config, [first, second])
    )


def test_backpressure_budget_and_quota(service_graph):
    graph = service_graph
    config = make_config()
    # In-flight budget: a submission arriving while every execution slot is
    # occupied is refused (or blocks until completions free capacity).
    service = WalkService(graph, fleet=DeviceFleet(DEVICE))
    scheduler = service.scheduler(max_inflight_walkers=4)
    session = scheduler.session(DeepWalkSpec(), config)
    first = make_queries_block(1, 6, graph.num_nodes)
    session.submit(first)  # 4 admitted next tick, 2 queued behind them
    scheduler.tick()
    assert scheduler.inflight == 4 and scheduler.queued == 2
    with pytest.raises(QueueFull):
        session.submit(make_queries_block(100, 2, graph.num_nodes))
    # A QueueFull submission must leave the session untouched: the same ids
    # are still submittable, and blocking admission waits for capacity.
    second = make_queries_block(100, 2, graph.num_nodes)
    session.submit(second, options=SubmitOptions(block_on_full=True))
    assert_bit_identical(
        session.collect(), solo_result(graph, DeepWalkSpec(), config, [first, second])
    )

    # Per-tenant quota: bounds outstanding (queued + in-flight) walkers.
    service = WalkService(graph, fleet=DeviceFleet(DEVICE))
    scheduler = service.scheduler(tenant_quotas=(("a", 8),))
    session = scheduler.session(DeepWalkSpec(), config, tenant="a")
    with pytest.raises(QueueFull):  # can never fit the quota
        session.submit(make_queries_block(800, 9, graph.num_nodes))
    first = make_queries_block(1, 6, graph.num_nodes)
    session.submit(first)
    with pytest.raises(QueueFull):  # 6 outstanding + 3 > 8
        session.submit(make_queries_block(100, 3, graph.num_nodes))
    third = make_queries_block(100, 2, graph.num_nodes)
    session.submit(third)  # 6 + 2 fits exactly
    assert_bit_identical(
        session.collect(), solo_result(graph, DeepWalkSpec(), config, [first, third])
    )


def test_attach_rejects_unfusable_plans(service_graph):
    graph = service_graph
    service = WalkService(graph, fleet=DeviceFleet(DEVICE, count=4))
    scheduler = service.scheduler()
    with pytest.raises(ServiceError, match="scalar"):
        scheduler.session(DeepWalkSpec(), make_config(execution="scalar"))
    with pytest.raises(ServiceError, match="[Ss]harded"):
        scheduler.session(
            DeepWalkSpec(),
            make_config(num_devices=4, graph_placement="sharded"),
        )
    # A session with prior standalone work cannot join mid-life.
    session = service.session(DeepWalkSpec(), make_config())
    session.submit(make_queries_block(1, 3, graph.num_nodes))
    with pytest.raises(ServiceError, match="before submitting"):
        scheduler.attach(session)
    # And a session can only ride one scheduler at a time.
    fresh = service.session(DeepWalkSpec(), make_config())
    scheduler.attach(fresh)
    with pytest.raises(ServiceError, match="already attached"):
        scheduler.attach(fresh)
    with pytest.raises(ServiceError, match="different scheduler"):
        service.scheduler().attach(fresh)


def test_capabilities_record_admission_policy(service_graph):
    service = WalkService(
        service_graph,
        max_inflight_walkers=32,
        fairness="fifo",
        tenant_quotas=(("a", 8),),
    )
    capabilities = service.capabilities()
    assert capabilities.max_inflight_walkers == 32
    assert capabilities.fairness == "fifo"
    assert capabilities.tenant_quotas == (("a", 8),)
    plan = service.plan_for(DeepWalkSpec(), make_config())
    assert any("admission policy: fifo" in reason for reason in plan.reasons)
    # The scheduler factory seeds its knobs from the capabilities.
    scheduler = service.scheduler()
    assert scheduler.max_inflight_walkers == 32
    assert scheduler.fairness == "fifo"
    assert scheduler.describe()["tenants"] == ["a"]
