"""Code generator: builds the runtime helper functions from the analysis table.

Mirrors Fig. 9d of the paper.  Given the analysis result for a workload's
``get_weight``:

* ``preprocess``       — per-node MAX/SUM aggregates of every edge-indexed
  array the return values depend on (delegated to
  :mod:`repro.compiler.preprocess`);
* ``get_weight_max``   — estimates an upper bound on the maximum transition
  weight of the current node by replaying the kept assignment statements with
  edge-indexed variables bound to their per-node MAX aggregate and taking the
  max over every return expression;
* ``get_weight_sum``   — estimates the transition-weight sum by binding
  edge-indexed variables to their per-node SUM aggregate, averaging the
  return expressions (and multiplying by the degree in the PER_KERNEL case
  where no per-edge data is involved), following Eq. (12).

The helpers are ordinary Python callables built from compiled AST fragments
of the user's own code, which is the Python analogue of the C++ snippets the
CUDA implementation splices into its kernels.
"""

from __future__ import annotations

import ast
import warnings
from dataclasses import dataclass, field
from types import CodeType

from repro.errors import CompilerWarning
from repro.compiler.analyzer import AnalysisResult, analyze_get_weight
from repro.compiler.flags import BoundGranularity
from repro.compiler.preprocess import PreprocessResult, preprocess_graph
from repro.graph.csr import CSRGraph
from repro.gpusim.device import DeviceSpec
from repro.walks.spec import WalkSpec
from repro.walks.state import WalkerState


def _compile_expr(expr: ast.expr) -> CodeType:
    """Compile one expression AST node into an evaluable code object."""
    wrapper = ast.Expression(body=expr)
    ast.fix_missing_locations(wrapper)
    return compile(wrapper, filename="<flexi-compiler>", mode="eval")


@dataclass
class GeneratedHelpers:
    """The compiled helper machinery for one workload.

    The raw compiled fragments are kept private; users interact through
    :meth:`estimate_max` and :meth:`estimate_sum`, which correspond to the
    generated ``get_weight_max()`` / ``get_weight_sum()`` functions.
    """

    spec: WalkSpec
    analysis: AnalysisResult
    _assignment_code: list[tuple[str, CodeType]] = field(default_factory=list)
    _return_code: list[CodeType] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._assignment_code = [
            (name, _compile_expr(expr)) for name, expr in self.analysis.assignments
        ]
        self._return_code = [_compile_expr(expr) for expr in self.analysis.return_expressions]
        self._globals = getattr(self.spec.get_weight, "__globals__", {})
        args = self.analysis.argument_names
        self._self_arg = args[0] if len(args) > 0 else "self"
        self._graph_arg = args[1] if len(args) > 1 else "graph"
        self._state_arg = args[2] if len(args) > 2 else "state"
        self._edge_arg = args[3] if len(args) > 3 else "edge"

    # ------------------------------------------------------------------ #
    def _evaluate_returns(
        self,
        graph: CSRGraph,
        state: WalkerState,
        substitutions: dict[str, float],
    ) -> list[float]:
        """Replay assignments and evaluate every reachable return expression.

        Assignments whose evaluation fails (e.g. they need the previous node
        before the first step) simply leave their variable unbound; any
        return expression that then fails to evaluate is skipped — exactly
        the graceful behaviour needed so the surviving branches still yield a
        valid estimate.
        """
        env: dict[str, object] = {
            self._self_arg: self.spec,
            self._graph_arg: graph,
            self._state_arg: state,
            self._edge_arg: None,
        }
        for name, code in self._assignment_code:
            if name in substitutions:
                env[name] = substitutions[name]
                continue
            try:
                env[name] = eval(code, self._globals, env)  # noqa: S307 - user walk code
            except Exception:
                env.pop(name, None)
        values: list[float] = []
        for code in self._return_code:
            try:
                values.append(float(eval(code, self._globals, env)))  # noqa: S307
            except Exception:
                continue
        return values

    def _substitutions(self, pre: PreprocessResult | None, node: int, kind: str) -> dict[str, float]:
        """Bind edge-indexed variables to the node's preprocessed aggregate."""
        if pre is None:
            return {}
        mapping: dict[str, float] = {}
        for var in self.analysis.edge_indexed:
            if pre.has_array(var.source_array):
                if kind == "max":
                    mapping[var.name] = pre.node_max(var.source_array, node)
                else:
                    mapping[var.name] = pre.node_sum(var.source_array, node)
        return mapping

    # ------------------------------------------------------------------ #
    def estimate_max(
        self,
        graph: CSRGraph,
        state: WalkerState,
        pre: PreprocessResult | None,
    ) -> float | None:
        """``get_weight_max()``: upper bound on the node's max transition weight."""
        subs = self._substitutions(pre, state.current_node, kind="max")
        values = self._evaluate_returns(graph, state, subs)
        if not values:
            return None
        return max(values)

    def estimate_sum(
        self,
        graph: CSRGraph,
        state: WalkerState,
        pre: PreprocessResult | None,
    ) -> float | None:
        """``get_weight_sum()``: estimate of the node's transition-weight sum."""
        subs = self._substitutions(pre, state.current_node, kind="sum")
        values = self._evaluate_returns(graph, state, subs)
        if not values:
            return None
        estimate = sum(values) / len(values)
        if self.analysis.granularity is BoundGranularity.PER_KERNEL:
            # No per-edge data was involved, so the averaged branch value is a
            # per-edge weight; emulate the sum by multiplying by the degree.
            estimate *= graph.degree(state.current_node)
        return estimate


@dataclass
class CompiledWorkload:
    """A workload bundled with its compiled helpers and preprocessed data.

    This is the artefact Flexi-Runtime consumes: it exposes per-step
    ``bound_hint`` / ``sum_hint`` estimates and remembers whether the compiler
    had to fall back to eRVS-only mode.
    """

    spec: WalkSpec
    analysis: AnalysisResult
    helpers: GeneratedHelpers | None
    preprocessed: PreprocessResult | None
    _static_bound: float | None = None
    _static_bound_known: bool = False

    @property
    def supported(self) -> bool:
        """False when the analyser flagged unsupported constructs (Section 7.1)."""
        return self.analysis.supported and self.helpers is not None

    @property
    def granularity(self) -> BoundGranularity:
        return self.analysis.granularity

    @property
    def preprocessing_time_ns(self) -> float:
        return self.preprocessed.simulated_time_ns if self.preprocessed else 0.0

    @property
    def hints_node_only(self) -> bool:
        """True when the hints are a pure function of the current node.

        The generated helpers replay the workload's return expressions with
        edge-indexed variables bound to *per-node* aggregates, so when no
        return expression transitively reads the walker state, ``bound_hint``
        / ``sum_hint`` depend only on ``state.current_node`` — and the
        batched engine may precompute them once per node instead of
        re-evaluating the helpers per walker per step.  Workloads whose
        returns do read state (e.g. the degree terms of second-order
        PageRank) report False and fall back to per-walker evaluation.
        """
        if not self.supported:
            return False
        args = self.analysis.argument_names
        state_arg = args[2] if len(args) > 2 else "state"
        return all(state_arg not in deps for deps in self.analysis.return_dependencies)

    # ------------------------------------------------------------------ #
    def bound_hint(self, graph: CSRGraph, state: WalkerState) -> float | None:
        """Estimated max-weight upper bound for the walker's current node."""
        if not self.supported:
            return None
        if self.granularity is BoundGranularity.PER_KERNEL:
            if not self._static_bound_known:
                self._static_bound = self.helpers.estimate_max(graph, state, self.preprocessed)
                self._static_bound_known = True
            return self._static_bound
        return self.helpers.estimate_max(graph, state, self.preprocessed)

    def sum_hint(self, graph: CSRGraph, state: WalkerState) -> float | None:
        """Estimated transition-weight sum for the walker's current node."""
        if not self.supported:
            return None
        return self.helpers.estimate_sum(graph, state, self.preprocessed)


def compile_workload(
    spec: WalkSpec,
    graph: CSRGraph,
    device: DeviceSpec | None = None,
) -> CompiledWorkload:
    """Run the full Flexi-Compiler pipeline for one workload on one graph.

    On success the returned bundle carries helper callables and preprocessed
    per-node aggregates; when the analysis finds unsupported constructs a
    :class:`CompilerWarning` is emitted and the bundle reports
    ``supported = False`` so the runtime uses eRVS exclusively.
    """
    analysis = analyze_get_weight(spec)
    if not analysis.supported:
        warnings.warn(
            "Flexi-Compiler could not specialise "
            f"{type(spec).__name__}.get_weight ({'; '.join(analysis.warnings)}); "
            "falling back to eRVS-only execution",
            CompilerWarning,
            stacklevel=2,
        )
        return CompiledWorkload(spec=spec, analysis=analysis, helpers=None, preprocessed=None)

    needed_arrays = tuple(
        dict.fromkeys(
            var.source_array
            for var, deps in (
                (v, d)
                for v in analysis.edge_indexed
                for d in analysis.return_dependencies
                if v.name in d
            )
        )
    )
    preprocessed = (
        preprocess_graph(graph, arrays=needed_arrays, device=device) if needed_arrays else None
    )
    helpers = GeneratedHelpers(spec=spec, analysis=analysis)
    return CompiledWorkload(
        spec=spec,
        analysis=analysis,
        helpers=helpers,
        preprocessed=preprocessed,
    )
