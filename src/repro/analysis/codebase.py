"""Internal invariant linter: repo rules the generic linters can't express.

Run over ``src/repro`` by ``scripts/lint_internal.py`` in the CI lint job.
Three invariants, each an ERROR:

``internal/unseeded-rng``
    No unseeded RNG construction and no module-level ``random`` /
    ``np.random`` stream calls anywhere in the library.  Every random draw
    must flow from an explicit seed (the counter-based streams in
    :mod:`repro.rng.streams`), or fault-recovery replay and scheduler-fusion
    parity silently break.
``internal/wall-clock``
    No wall-clock/monotonic reads (``time.*``, ``datetime.now``,
    ``os.urandom``, uuid1/uuid4) outside bench/ or scripts/ paths.  The
    simulator's timing model is counter-driven; host time may only be read
    at the measurement boundaries, which carry explicit
    ``# repro: ignore[internal/wall-clock]`` suppressions.
``internal/cache-contract``
    ``CSRGraph._edge_key_cache`` / ``_in_degree_cache`` may be touched only
    by ``graph/csr.py`` and ``graph/invalidation.py``, and
    ``TransitionCache`` private state only by
    ``sampling/transition_cache.py`` and ``graph/invalidation.py`` — the
    two modules that uphold the versioned invalidation contracts from the
    delta-graph subsystem.  Any other access path can serve stale topology
    after ``apply_delta``.

Suppression uses the same ``# repro: ignore[rule-id]`` trailing comment as
the spec verifier.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.determinism import (
    _DATETIME_FNS,
    _GLOBAL_STREAM_FNS,
    _RNG_FACTORIES,
    _TIME_FNS,
    _dotted_path,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    SourceSpan,
    _DiagnosticCollector,
    filter_suppressed,
)

#: CSRGraph topology-cache slots with an invalidation contract.
_GRAPH_CACHE_ATTRS = frozenset({"_edge_key_cache", "_in_degree_cache"})
_GRAPH_CACHE_ALLOWED = ("graph/csr.py", "graph/invalidation.py")

#: TransitionCache private state (weights/CDF/alias tables + fill masks).
_TC_PRIVATE_ATTRS = frozenset(
    {
        "_weights",
        "_have_weights",
        "_cdf",
        "_totals",
        "_have_cdf",
        "_alias_prob",
        "_alias_idx",
        "_have_alias",
    }
)
_TC_ALLOWED = ("sampling/transition_cache.py", "graph/invalidation.py")

#: Path components exempt from the wall-clock rule.
_WALL_CLOCK_EXEMPT_PARTS = frozenset({"bench", "benchmarks", "scripts"})


def _span(file: str, node: ast.AST) -> SourceSpan:
    return SourceSpan(
        file=file,
        line=getattr(node, "lineno", 1),
        end_line=getattr(node, "end_lineno", None) or getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        end_col=getattr(node, "end_col_offset", 0) or 0,
    )


def _path_matches(posix_path: str, allowed: tuple[str, ...]) -> bool:
    return any(posix_path.endswith(suffix) for suffix in allowed)


def _check_internal_call(
    node: ast.Call, file: str, wall_clock_exempt: bool, out: _DiagnosticCollector
) -> None:
    path = _dotted_path(node.func)
    if not path:
        return
    fn = path[-1]
    dotted = ".".join(path)
    if fn in _RNG_FACTORIES and not node.args and not node.keywords:
        out.add(
            "internal/unseeded-rng",
            Severity.ERROR,
            f"unseeded RNG construction {dotted}() in library code",
            span=_span(file, node),
            fix_hint="thread an explicit seed (see repro.rng.streams)",
        )
        return
    if len(path) >= 2 and path[-2] == "random" and fn in _GLOBAL_STREAM_FNS:
        out.add(
            "internal/unseeded-rng",
            Severity.ERROR,
            f"module-level RNG stream call {dotted}() in library code",
            span=_span(file, node),
            fix_hint="draw from an explicitly seeded generator instead",
        )
        return
    if wall_clock_exempt:
        return
    is_time = len(path) >= 2 and path[-2] == "time" and fn in _TIME_FNS
    is_datetime = fn in _DATETIME_FNS and len(path) >= 2 and path[-2] in ("datetime", "date")
    is_entropy = path[-2:] == ("os", "urandom") or fn in ("uuid1", "uuid4")
    if is_time or is_datetime or is_entropy:
        out.add(
            "internal/wall-clock",
            Severity.ERROR,
            f"wall-clock/entropy call {dotted}() outside bench/scripts",
            span=_span(file, node),
            fix_hint=(
                "keep timing counter-driven; measurement boundaries carry "
                "an explicit '# repro: ignore[internal/wall-clock]'"
            ),
        )


def _check_cache_contract(node: ast.Attribute, posix_path: str, out: _DiagnosticCollector) -> None:
    if node.attr in _GRAPH_CACHE_ATTRS and not _path_matches(posix_path, _GRAPH_CACHE_ALLOWED):
        out.add(
            "internal/cache-contract",
            Severity.ERROR,
            f"access to CSRGraph.{node.attr} outside the invalidation contract "
            f"(allowed: {', '.join(_GRAPH_CACHE_ALLOWED)})",
            span=_span(posix_path, node),
            fix_hint="go through the public accessors or repro.graph.invalidation",
        )
    elif node.attr in _TC_PRIVATE_ATTRS and not _path_matches(posix_path, _TC_ALLOWED):
        out.add(
            "internal/cache-contract",
            Severity.ERROR,
            f"access to TransitionCache private state .{node.attr} outside its "
            f"contract (allowed: {', '.join(_TC_ALLOWED)})",
            span=_span(posix_path, node),
            fix_hint="use TransitionCache's public fill/invalidate API",
        )


def lint_source(source: str, file: str) -> tuple[Diagnostic, ...]:
    """Lint one file's source text; ``file`` is used for spans and contracts."""
    posix_path = file.replace("\\", "/")
    out = _DiagnosticCollector()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        out.add(
            "internal/syntax-error",
            Severity.ERROR,
            f"file does not parse: {exc.msg}",
            span=SourceSpan(file=posix_path, line=exc.lineno or 1, col=(exc.offset or 1) - 1),
        )
        return tuple(out.diagnostics)
    wall_clock_exempt = bool(_WALL_CLOCK_EXEMPT_PARTS & set(posix_path.split("/")))
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            _check_internal_call(node, posix_path, wall_clock_exempt, out)
        elif isinstance(node, ast.Attribute):
            _check_cache_contract(node, posix_path, out)
    lines = source.splitlines()

    def get_line(_file: str, lineno: int) -> str:
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1]
        return ""

    return tuple(filter_suppressed(out.diagnostics, get_line))


def lint_file(path: str | Path) -> tuple[Diagnostic, ...]:
    """Lint one Python file on disk."""
    p = Path(path)
    try:
        source = p.read_text(encoding="utf-8")
    except OSError as exc:
        return (
            Diagnostic(
                rule="internal/unreadable-file",
                severity=Severity.ERROR,
                message=f"cannot read {p}: {exc}",
                span=SourceSpan(file=str(p), line=1),
            ),
        )
    return lint_source(source, str(p))


def lint_paths(paths: list[str | Path]) -> tuple[Diagnostic, ...]:
    """Lint every ``.py`` file under the given files/directories."""
    diagnostics: list[Diagnostic] = []
    for entry in paths:
        p = Path(entry)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for file in files:
            diagnostics.extend(lint_file(file))
    return tuple(diagnostics)
