"""Bound-estimation granularity flags allocated by the code analyser.

The flag records how often the maximum-weight upper bound used by eRJS must
be re-estimated at runtime (Section 4.2):

* ``PER_KERNEL`` — the bound is a constant for the whole kernel launch, e.g.
  unweighted Node2Vec where every return value is built from hyperparameters
  only (``max(1, 1/a, 1/b)``).
* ``PER_STEP`` — the bound depends on per-node indexed data (the property
  weights), so it must be re-estimated before every sampling step from the
  preprocessed per-node aggregates.
"""

from __future__ import annotations

import enum


class BoundGranularity(enum.Enum):
    """How often the eRJS weight upper bound must be re-estimated."""

    PER_KERNEL = "per_kernel"
    PER_STEP = "per_step"

    @property
    def is_constant(self) -> bool:
        """True when the bound can be computed once per kernel launch."""
        return self is BoundGranularity.PER_KERNEL
