"""Device models: per-operation costs, capacity, and power envelopes.

The paper's testbed is up to four NVIDIA A6000 GPUs on an AMD EPYC 9124P host
(Section 6.1).  ``A6000`` and ``EPYC_9124P`` are the corresponding presets.
All per-operation costs are expressed in nanoseconds of device-occupancy per
*warp-wide lane of work*; only their ratios matter for the reproduction (the
random-to-coalesced access ratio is what the Flexi-Runtime cost model profiles
at startup), but the absolute values are chosen so simulated times land in a
plausible millisecond range for the scale-model datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import SimulationError
from repro.gpusim.counters import CostCounters, CounterBatch


@dataclass(frozen=True)
class DeviceSpec:
    """Cost/capacity/power model of one execution device.

    Attributes
    ----------
    name:
        Human-readable device name.
    parallel_lanes:
        Number of concurrently executing hardware lanes (SMs x resident
        warps x warp size for a GPU; cores x threads for a CPU).  Kernel
        time is per-lane work divided across these lanes by the executor.
    coalesced_access_ns / random_access_ns:
        Cost of one word read through a coalesced / uncoalesced transaction.
    weight_compute_ns:
        Cost of one ``get_weight`` evaluation (a handful of FLOPs + a branch).
    rng_ns:
        Cost of one random variate (cuRAND Philox draw, or a CPU PRNG call).
    reduction_ns / prefix_sum_ns:
        Per-element cost of warp/block reductions and prefix sums.
    warp_sync_ns:
        Cost of one warp-synchronisation intrinsic.
    atomic_ns:
        Cost of one global atomic (query-queue counter bump).
    table_build_ns:
        Per-element cost of building auxiliary structures (alias/CDF tables).
    memory_bytes:
        Device memory capacity (used for the simulated OOM checks and the
        replicated-vs-sharded plan negotiation).
    idle_watts / peak_watts:
        Power envelope for the energy model (Fig. 16).
    interconnect_latency_ns:
        Fixed per-transfer latency of one device-to-device message (NVLink /
        PCIe peer-to-peer for the GPU preset, socket interconnect for the
        CPU preset).  Charged once per walker migration by the sharded
        execution mode.
    interconnect_bytes_per_ns:
        Device-to-device bandwidth in bytes per nanosecond (1 byte/ns ==
        1 GB/s).  Together with the latency this prices
        :meth:`migration_time_ns`.
    checkpoint_latency_ns:
        Fixed cost of initiating one walker-state checkpoint (the barrier
        plus copy-out initiation).  Charged once per checkpoint by the
        fault-tolerance runtime (:mod:`repro.runtime.faults`).  Scaled to
        the simulator's per-operation cost scale, like ``atomic_ns`` — not
        a wall-clock kernel-launch figure.
    checkpoint_bytes_per_ns:
        Per-lane drain bandwidth of the checkpoint copy-out, in bytes per
        nanosecond.  The copy-out is a lane-parallel kernel like every
        other cost in the simulator — each lane streams its resident
        walkers' records out — so :meth:`checkpoint_time_ns` divides the
        payload across ``parallel_lanes`` before applying this rate.
    """

    name: str
    parallel_lanes: int
    coalesced_access_ns: float
    random_access_ns: float
    weight_compute_ns: float
    rng_ns: float
    reduction_ns: float
    prefix_sum_ns: float
    warp_sync_ns: float
    atomic_ns: float
    table_build_ns: float
    memory_bytes: int
    idle_watts: float
    peak_watts: float
    interconnect_latency_ns: float = 1300.0
    interconnect_bytes_per_ns: float = 32.0
    checkpoint_latency_ns: float = 12.0
    checkpoint_bytes_per_ns: float = 4.0

    def __post_init__(self) -> None:
        if self.parallel_lanes < 1:
            raise SimulationError("a device needs at least one parallel lane")
        if min(
            self.coalesced_access_ns,
            self.random_access_ns,
            self.weight_compute_ns,
            self.rng_ns,
            self.reduction_ns,
            self.prefix_sum_ns,
            self.warp_sync_ns,
            self.atomic_ns,
            self.table_build_ns,
            self.interconnect_latency_ns,
            self.checkpoint_latency_ns,
        ) < 0:
            raise SimulationError("per-operation costs must be non-negative")
        if self.interconnect_bytes_per_ns <= 0:
            raise SimulationError("interconnect bandwidth must be positive")
        if self.checkpoint_bytes_per_ns <= 0:
            raise SimulationError("checkpoint bandwidth must be positive")

    # ------------------------------------------------------------------ #
    def lane_time_ns(self, counters: CostCounters) -> float:
        """Price a counter bundle: nanoseconds of work for a single lane.

        The INT8 extension (Section 7.2) reduces memory time proportionally
        to the stored weight width, which is modelled through
        ``counters.bytes_per_weight``.
        """
        width_scale = counters.bytes_per_weight / 8.0
        memory_ns = (
            counters.coalesced_accesses * self.coalesced_access_ns
            + counters.random_accesses * self.random_access_ns
        ) * width_scale
        compute_ns = (
            counters.weight_computations * self.weight_compute_ns
            + counters.rng_draws * self.rng_ns
            + counters.reduction_elements * self.reduction_ns
            + counters.prefix_sum_elements * self.prefix_sum_ns
            + counters.warp_syncs * self.warp_sync_ns
            + counters.atomic_ops * self.atomic_ns
            + counters.table_builds * self.table_build_ns
        )
        return memory_ns + compute_ns

    def lane_times_ns(self, batch: CounterBatch) -> np.ndarray:
        """Vectorised :meth:`lane_time_ns` over a :class:`CounterBatch`.

        The arithmetic mirrors the scalar method term for term and in the
        same association order, so slot ``i`` of the result is bit-identical
        to ``lane_time_ns`` of the equivalent scalar counter object — the
        property the batched engine relies on for exact timing parity.
        """
        width_scale = batch.bytes_per_weight / 8.0
        memory_ns = (
            batch.coalesced_accesses * self.coalesced_access_ns
            + batch.random_accesses * self.random_access_ns
        ) * width_scale
        compute_ns = (
            batch.weight_computations * self.weight_compute_ns
            + batch.rng_draws * self.rng_ns
            + batch.reduction_elements * self.reduction_ns
            + batch.prefix_sum_elements * self.prefix_sum_ns
            + batch.warp_syncs * self.warp_sync_ns
            + batch.atomic_ops * self.atomic_ns
            + batch.table_builds * self.table_build_ns
        )
        return memory_ns + compute_ns

    def migration_time_ns(self, num_bytes: int) -> float:
        """Interconnect cost of shipping ``num_bytes`` to a peer device.

        The sharded execution mode charges one such transfer whenever a
        sampled step lands on a node owned by a remote shard and the walker
        record migrates to that shard's device (KnightKing-style walker
        migration).  Latency-plus-bandwidth model: small walker records are
        latency-dominated, exactly like real peer-to-peer messages.
        """
        return self.interconnect_latency_ns + num_bytes / self.interconnect_bytes_per_ns

    def checkpoint_time_ns(self, num_bytes: int) -> float:
        """Cost of draining ``num_bytes`` of walker state to checkpoint
        storage (and, symmetrically, of reading it back on restore).

        Latency plus a *lane-parallel* drain: the copy-out kernel streams
        each lane's resident walker records concurrently, exactly as the
        step kernels price their work per lane, so the payload divides
        across ``parallel_lanes``.  Checkpoints of a few walkers are
        latency-dominated, frontiers wider than the lane count pay the
        per-lane bandwidth on their surplus rows.
        """
        return self.checkpoint_latency_ns + num_bytes / (
            self.checkpoint_bytes_per_ns * self.parallel_lanes
        )

    @property
    def random_to_coalesced_ratio(self) -> float:
        """The EdgeCost_RJS / EdgeCost_RVS ratio of Eq. (11), from the spec."""
        if self.coalesced_access_ns == 0:
            return float("inf")
        return self.random_access_ns / self.coalesced_access_ns

    def scaled(self, factor: float, name: str | None = None) -> DeviceSpec:
        """Return a device with ``factor``x the parallel lanes (multi-GPU)."""
        return replace(
            self,
            name=name if name is not None else f"{self.name} x{factor:g}",
            parallel_lanes=max(1, int(self.parallel_lanes * factor)),
        )


#: NVIDIA RTX A6000 preset (84 SMs, 48 GB, 300 W TDP).
A6000 = DeviceSpec(
    name="NVIDIA A6000",
    parallel_lanes=84 * 48,           # SMs x resident warps
    coalesced_access_ns=0.55,
    random_access_ns=4.4,
    weight_compute_ns=0.12,
    rng_ns=0.9,
    reduction_ns=0.35,
    prefix_sum_ns=0.45,
    warp_sync_ns=1.5,
    atomic_ns=12.0,
    table_build_ns=1.6,
    memory_bytes=48 * 1024**3,
    idle_watts=70.0,
    peak_watts=300.0,
    interconnect_latency_ns=1300.0,   # NVLink peer-to-peer message latency
    interconnect_bytes_per_ns=112.0,  # NVLink 3 bridge, ~112 GB/s per direction
)

#: AMD EPYC 9124P preset (16 cores / 32 threads, 512 GB host memory, 200 W).
EPYC_9124P = DeviceSpec(
    name="AMD EPYC 9124P",
    parallel_lanes=32,
    coalesced_access_ns=1.2,
    random_access_ns=18.0,
    weight_compute_ns=0.9,
    rng_ns=4.5,
    reduction_ns=1.0,
    prefix_sum_ns=1.1,
    warp_sync_ns=0.0,
    atomic_ns=25.0,
    table_build_ns=3.0,
    memory_bytes=512 * 1024**3,
    idle_watts=90.0,
    peak_watts=200.0,
    interconnect_latency_ns=500.0,   # cross-socket / cross-CCD hop
    interconnect_bytes_per_ns=47.0,  # xGMI-class link, ~47 GB/s
)
