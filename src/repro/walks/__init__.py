"""Walk workloads: the user-facing gather-move-update programming model.

A *walk specification* supplies only the workload-specific logic of the paper's
programming model (Section 4.2): ``init`` for hyperparameters, ``get_weight``
for the per-edge transition weight and ``update`` for post-step bookkeeping.
Everything else — sampling strategy, kernel selection, scheduling — is the
framework's job.

This package ships the paper's five evaluated workloads: weighted/unweighted
Node2Vec, weighted/unweighted MetaPath and second-order PageRank, plus
DeepWalk as a static-walk reference.
"""

from repro.walks.state import WalkerFrontier, WalkerState, WalkQuery, make_queries
from repro.walks.spec import WalkSpec, UniformWalkSpec
from repro.walks.node2vec import Node2VecSpec, UnweightedNode2VecSpec
from repro.walks.metapath import MetaPathSpec
from repro.walks.second_order_pr import SecondOrderPRSpec
from repro.walks.deepwalk import DeepWalkSpec
from repro.walks.registry import WORKLOADS, make_workload, workload_names

__all__ = [
    "WalkerState",
    "WalkerFrontier",
    "WalkQuery",
    "make_queries",
    "WalkSpec",
    "UniformWalkSpec",
    "Node2VecSpec",
    "UnweightedNode2VecSpec",
    "MetaPathSpec",
    "SecondOrderPRSpec",
    "DeepWalkSpec",
    "WORKLOADS",
    "make_workload",
    "workload_names",
]
