"""Tests for multi-GPU partitioning and execution."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpusim.device import A6000
from repro.gpusim.multigpu import MultiGPUExecutor, partition_queries


@pytest.fixture
def device():
    return dataclasses.replace(A6000, parallel_lanes=8, atomic_ns=0.0)


class TestPartitioning:
    def test_partitions_cover_all_queries(self):
        starts = np.arange(100)
        parts = partition_queries(starts, 4, policy="hash")
        combined = np.sort(np.concatenate(parts))
        assert np.array_equal(combined, np.arange(100))

    def test_range_policy_contiguous_and_balanced(self):
        parts = partition_queries(np.arange(100), 4, policy="range")
        sizes = [p.size for p in parts]
        assert sizes == [25, 25, 25, 25]
        assert np.array_equal(parts[0], np.arange(25))

    def test_hash_policy_roughly_balanced(self):
        parts = partition_queries(np.arange(4000), 4, policy="hash")
        sizes = np.array([p.size for p in parts])
        assert sizes.min() > 800

    def test_hash_deterministic(self):
        a = partition_queries(np.arange(50), 3, policy="hash")
        b = partition_queries(np.arange(50), 3, policy="hash")
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_single_gpu_gets_everything(self):
        parts = partition_queries(np.arange(10), 1)
        assert parts[0].size == 10

    def test_invalid_policy_rejected(self):
        with pytest.raises(SimulationError):
            partition_queries(np.arange(10), 2, policy="round-robin")

    def test_zero_gpus_rejected(self):
        with pytest.raises(SimulationError):
            partition_queries(np.arange(10), 0)


class TestMultiGPUExecutor:
    def test_more_gpus_never_slower(self, device):
        per_query = np.random.default_rng(0).uniform(5, 15, size=200)
        starts = np.arange(200)
        times = []
        for gpus in (1, 2, 4):
            result = MultiGPUExecutor(device, gpus).execute(per_query, starts)
            times.append(result.time_ns)
        assert times[1] <= times[0]
        assert times[2] <= times[1]

    def test_speedup_roughly_linear_for_uniform_work(self, device):
        per_query = np.full(512, 10.0)
        starts = np.arange(512)
        single = MultiGPUExecutor(device, 1).execute(per_query, starts)
        quad = MultiGPUExecutor(device, 4).execute(per_query, starts)
        assert quad.speedup_over(single.time_ns) > 2.5

    def test_mismatched_arrays_rejected(self, device):
        with pytest.raises(SimulationError):
            MultiGPUExecutor(device, 2).execute(np.ones(5), np.arange(4))

    def test_per_gpu_results_exposed(self, device):
        result = MultiGPUExecutor(device, 3).execute(np.ones(30), np.arange(30))
        assert len(result.per_gpu) == 3

    def test_load_imbalance_reported(self, device):
        per_query = np.ones(64)
        result = MultiGPUExecutor(device, 4).execute(per_query, np.arange(64))
        assert result.load_imbalance >= 1.0
