"""Baseline reservoir sampling (RVS), the strategy of FlowWalker.

Sequential weighted reservoir sampling visits neighbours in order and
replaces the current candidate ``c`` by neighbour ``i`` with probability
``w̃_i / Σ_{k<=i} w̃_k``.  FlowWalker parallelises this by precomputing the
prefix sums ``W_i`` so every comparison becomes independent, then a max
reduction over the surviving indices yields the final candidate (Fig. 2e).

The costs this kernel pays — and which eRVS removes — are:

* a full prefix sum over the transition weights (an extra pass over the
  weight list and inter-thread communication), and
* **one random number per neighbour**.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.base import (
    Sampler,
    StepContext,
    all_weights_zero,
    gather_transition_weights,
)
from repro.sampling.batch import (
    BatchStepContext,
    local_positions,
    segment_any_positive,
    segment_offsets,
)


def parallel_reservoir_choice(weights: np.ndarray, uniforms: np.ndarray, prefix: np.ndarray) -> int | None:
    """FlowWalker's parallel formulation of sequential reservoir sampling.

    Neighbour ``i`` *would replace* the running candidate iff
    ``u_i * W_i < w̃_i``; because replacements are ordered, the final
    candidate is simply the largest such ``i``.  Returns ``None`` when no
    neighbour qualifies (only possible if every weight is zero).
    """
    qualified = np.nonzero(uniforms * prefix < weights)[0]
    if qualified.size == 0:
        return None
    return int(qualified[-1])


class ReservoirSampler(Sampler):
    """Prefix-sum weighted reservoir sampling (FlowWalker's kernel, Fig. 2e)."""

    name = "RVS"
    processing_unit = "warp"

    def sample(self, ctx: StepContext) -> int | None:
        if not self._check_nonempty(ctx):
            return None
        # The baseline reads the weight list twice: once to build the prefix
        # sums and once while evaluating the replacement conditions.
        weights = gather_transition_weights(ctx, passes=2)
        degree = weights.size
        if all_weights_zero(weights):
            return None

        warp = ctx.warp()
        prefix = warp.prefix_sum(weights)

        # One uniform per neighbour — the RNG cost eRVS's jump removes.
        uniforms = np.asarray(ctx.rng.uniform(degree))
        ctx.counters.rng_draws += degree

        choice = parallel_reservoir_choice(weights, uniforms, prefix)
        # Selecting the surviving candidate across lanes is a max reduction.
        warp.reduce_max(np.arange(min(degree, ctx.warp_width), dtype=np.float64))
        if choice is None:
            return None
        return int(ctx.neighbors()[choice])

    # ------------------------------------------------------------------ #
    def _sample_batch_nonempty(self, batch: BatchStepContext, out: np.ndarray) -> np.ndarray:
        """Frontier-wide RVS: vectorised draws/conditions, per-walker scans.

        The prefix sums stay per-walker ``np.cumsum`` calls (bit-exact with
        the scalar kernel's accumulation); the per-neighbour uniforms, the
        replacement conditions and the last-qualified selection run as one
        vectorised pass over the whole frontier.
        """
        degrees = batch.degrees
        weights = batch.gather_weights(passes=2)
        live = np.nonzero(segment_any_positive(weights, degrees))[0]
        if live.size == 0:
            return out

        prefix = np.empty(weights.size, dtype=np.float64)
        for i in live:
            lo, hi = int(batch.offsets[i]), int(batch.offsets[i + 1])
            prefix[lo:hi] = np.cumsum(weights[lo:hi])
        batch.charge("prefix_sum_elements", degrees[live], live)

        counts = np.zeros(batch.size, dtype=np.int64)
        counts[live] = degrees[live]
        uniforms = batch.rng.uniform_flat(counts)
        batch.charge("rng_draws", degrees[live], live)

        flat_mask = batch.edge_mask(live)
        live_lengths = degrees[live]
        qualified = uniforms * prefix[flat_mask] < weights[flat_mask]
        pos = local_positions(live_lengths)
        # Replacements are ordered, so the survivor is simply the largest
        # qualified position per segment (-1 when none qualified).
        starts = segment_offsets(live_lengths)[:-1]
        last = np.maximum.reduceat(np.where(qualified, pos, -1), starts)
        batch.charge("reduction_elements", np.minimum(live_lengths, batch.warp_width), live)

        chosen = np.nonzero(last >= 0)[0]
        out[live[chosen]] = batch.neighbors_flat[
            batch.offsets[:-1][live[chosen]] + last[chosen]
        ]
        return out
