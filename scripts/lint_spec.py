#!/usr/bin/env python
"""Statically verify WalkSpec subclasses before they reach the service.

Runs the whole-spec verifier (``repro.analysis.verify_spec``) over every
``WalkSpec`` subclass found in the given modules and prints one line per
diagnostic (rule id, severity, source span, fix hint).  The exit code is
CI-friendly: non-zero iff any spec produced an ERROR diagnostic, so the
lint job fails exactly when ``negotiate_plan`` would decline transition
caching and scheduler fusion for the spec.

Usage::

    PYTHONPATH=src python scripts/lint_spec.py --all-builtin
    PYTHONPATH=src python scripts/lint_spec.py my_package.my_specs
    PYTHONPATH=src python scripts/lint_spec.py path/to/specs.py

Modules may be given as dotted import paths or as ``.py`` file paths.
Specs whose constructor needs arguments are reported as skipped (they can
only be verified at instantiation time); abstract bases are ignored.
"""

from __future__ import annotations

import argparse
import importlib
import importlib.util
import inspect
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import verify_spec  # noqa: E402
from repro.walks.spec import WalkSpec  # noqa: E402

#: The walk specs shipped with the repository; ``--all-builtin`` verifies
#: exactly these, and CI requires them to be ERROR-free.
BUILTIN_SPECS = (
    "repro.walks.deepwalk.DeepWalkSpec",
    "repro.walks.metapath.MetaPathSpec",
    "repro.walks.node2vec.Node2VecSpec",
    "repro.walks.node2vec.UnweightedNode2VecSpec",
    "repro.walks.second_order_pr.SecondOrderPRSpec",
    "repro.walks.spec.UniformWalkSpec",
)


def _import_module(target: str):
    """Import ``target`` given as a dotted path or a ``.py`` file path."""
    path = Path(target)
    if path.suffix == ".py" and path.exists():
        name = path.stem
        spec = importlib.util.spec_from_file_location(name, path)
        if spec is None or spec.loader is None:
            raise ImportError(f"cannot load module from {target}")
        module = importlib.util.module_from_spec(spec)
        # Register before exec so inspect.getsource works on its classes.
        sys.modules[name] = module
        spec.loader.exec_module(module)
        return module
    return importlib.import_module(target)


def _spec_classes(module) -> list[type[WalkSpec]]:
    classes = []
    for _, obj in inspect.getmembers(module, inspect.isclass):
        if (
            issubclass(obj, WalkSpec)
            and obj is not WalkSpec
            and not inspect.isabstract(obj)
            and obj.__module__ == module.__name__
        ):
            classes.append(obj)
    return classes


def _load_builtin(dotted: str) -> type[WalkSpec]:
    module_name, _, class_name = dotted.rpartition(".")
    return getattr(importlib.import_module(module_name), class_name)


def lint_classes(classes: list[type[WalkSpec]], *, verbose: bool) -> int:
    """Verify each class; return the number of ERROR diagnostics."""
    errors = 0
    for cls in classes:
        label = f"{cls.__module__}.{cls.__qualname__}"
        try:
            spec = cls()
        except TypeError as exc:
            print(f"SKIP {label}: constructor needs arguments ({exc})")
            continue
        report = verify_spec(spec)
        errors += len(report.errors)
        if report.diagnostics:
            print(f"{label}:")
            for diag in report.diagnostics:
                print(f"  {diag.format()}")
        elif verbose:
            hooks = ", ".join(report.hooks_analyzed) or "none"
            print(f"OK {label}: {len(report.hooks_analyzed)} hooks analyzed ({hooks})")
        else:
            print(f"OK {label}")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "modules",
        nargs="*",
        help="modules to lint: dotted import paths or .py file paths",
    )
    parser.add_argument(
        "--all-builtin",
        action="store_true",
        help="verify every built-in walk spec shipped in repro.walks",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="list analyzed hooks for clean specs"
    )
    args = parser.parse_args()
    if not args.modules and not args.all_builtin:
        parser.error("nothing to lint: pass module names or --all-builtin")

    classes: list[type[WalkSpec]] = []
    if args.all_builtin:
        classes.extend(_load_builtin(dotted) for dotted in BUILTIN_SPECS)
    for target in args.modules:
        module = _import_module(target)
        found = _spec_classes(module)
        if not found:
            print(f"SKIP {target}: no WalkSpec subclasses defined in module")
        classes.extend(found)

    errors = lint_classes(classes, verbose=args.verbose)
    if errors:
        print(f"spec lint FAILED: {errors} ERROR diagnostic(s)")
        return 1
    print(f"spec lint OK: {len(classes)} spec(s) verified, no ERROR diagnostics")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
