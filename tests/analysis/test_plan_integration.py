"""Verifier wiring through the stack: compile -> negotiate -> schedule.

Covers the latent cache-safety gap regression (a state-reading batch
override must disqualify the TransitionCache even when the scalar
``get_weight`` is state-free), the plan-level decline of caching and
scheduler fusion for ERROR specs, the ``strict_verification`` hard-fail,
and the surfacing of analyzer warnings through ``negotiate_plan`` reasons
and ``WalkRunResult.summary()``.
"""

from __future__ import annotations

import dataclasses

import pytest
import spec_fixtures as fx

from repro.analysis import SpecReport
from repro.compiler.generator import compile_workload
from repro.core.config import FlexiWalkerConfig
from repro.errors import ServiceError
from repro.gpusim.device import A6000
from repro.graph.csr import CSRGraph
from repro.graph.generators import barabasi_albert_graph
from repro.graph.weights import uniform_weights
from repro.service import DeviceFleet, WalkService, declare_capabilities, negotiate_plan
from repro.walks.deepwalk import DeepWalkSpec
from repro.walks.spec import WalkSpec
from repro.walks.state import WalkerState, WalkQuery

DEVICE = dataclasses.replace(A6000, parallel_lanes=8)
GRAPH = barabasi_albert_graph(40, 3, seed=11, name="analysis-test")
GRAPH = GRAPH.with_weights(uniform_weights(GRAPH, seed=11))
CONFIG = FlexiWalkerConfig(device=DEVICE, seed=3)


def caps(**kwargs):
    return declare_capabilities(DeviceFleet(DEVICE), **kwargs)


def queries(n, length=8):
    return [
        WalkQuery(query_id=i, start_node=i % GRAPH.num_nodes, max_length=length)
        for i in range(n)
    ]


class _LoopFallbackSpec(WalkSpec):
    """Compiler-unsupported (data-dependent loop) but verifier-clean."""

    name = "analysis_loop_fallback"

    def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
        h_e = graph.weights[edge]
        total = 0.0
        while total < h_e:
            total += 1.0
        return total


class TestCompileAttachesReport:
    def test_every_compile_carries_a_spec_report(self):
        compiled = compile_workload(DeepWalkSpec(), GRAPH, DEVICE)
        assert isinstance(compiled.report, SpecReport)
        assert not compiled.report.has_errors

    def test_cache_gap_regression_batch_override_disqualifies_cache(self):
        # The gap this PR closes: a state-free scalar get_weight used to be
        # the whole proof, so this spec's state-reading batch override was
        # served stale TransitionCache rows on the batched path.
        compiled = compile_workload(fx.StatefulBatchSpec(), GRAPH, DEVICE)
        assert compiled.analysis.supported
        assert not compiled.analysis.reads_state  # scalar proof alone says cacheable
        assert not compiled.weights_node_only  # whole-spec proof says no
        assert "cache-safety/batch-state-divergence" in compiled.report.rule_ids()

    def test_clean_spec_keeps_cache_eligibility(self):
        compiled = compile_workload(DeepWalkSpec(), GRAPH, DEVICE)
        assert compiled.weights_node_only


class TestPlanDeclinesErrorSpecs:
    def test_error_spec_loses_cache_and_fusion_with_reason(self):
        compiled = compile_workload(fx.StatefulBatchSpec(), GRAPH, DEVICE)
        plan = negotiate_plan(caps(), CONFIG, compiled)
        assert not plan.use_transition_cache
        assert not plan.scheduler_fusion
        joined = " ".join(plan.reasons)
        assert "cache-safety/batch-state-divergence" in joined
        assert "declined" in joined
        assert plan.describe()["scheduler_fusion"] is False

    def test_clean_spec_keeps_fusion_and_cache(self):
        compiled = compile_workload(DeepWalkSpec(), GRAPH, DEVICE)
        plan = negotiate_plan(caps(), CONFIG, compiled)
        assert plan.use_transition_cache
        assert plan.scheduler_fusion

    def test_strict_verification_raises(self):
        compiled = compile_workload(fx.StatefulBatchSpec(), GRAPH, DEVICE)
        with pytest.raises(ServiceError, match="batch-state-divergence"):
            negotiate_plan(caps(strict_verification=True), CONFIG, compiled)

    def test_warning_rules_surface_as_reasons_without_decline(self):
        compiled = compile_workload(fx.HashSpec(), GRAPH, DEVICE)
        plan = negotiate_plan(caps(), CONFIG, compiled)
        assert plan.scheduler_fusion  # warnings never decline
        assert any("determinism/object-identity" in r for r in plan.reasons)

    @pytest.mark.filterwarnings("ignore::repro.errors.CompilerWarning")
    def test_compiler_fallback_recorded_as_reason(self):
        compiled = compile_workload(_LoopFallbackSpec(), GRAPH, DEVICE)
        plan = negotiate_plan(caps(), CONFIG, compiled)
        assert any("eRVS-only" in r for r in plan.reasons)


class TestServiceAndScheduler:
    def test_strict_service_rejects_error_spec_at_session_time(self):
        service = WalkService(
            GRAPH, fleet=DeviceFleet(DEVICE), strict_verification=True
        )
        with pytest.raises(ServiceError, match="static verification"):
            service.session(fx.StatefulBatchSpec(), CONFIG)

    def test_lenient_service_runs_error_spec_standalone(self):
        service = WalkService(GRAPH, fleet=DeviceFleet(DEVICE))
        session = service.session(fx.StatefulBatchSpec(), CONFIG)
        session.submit(queries(3))
        result = session.collect()
        assert len(result.paths) == 3

    def test_scheduler_refuses_unfusable_session(self):
        service = WalkService(GRAPH, fleet=DeviceFleet(DEVICE))
        scheduler = service.scheduler()
        with pytest.raises(ServiceError, match="scheduler fusion was declined"):
            scheduler.session(fx.StatefulBatchSpec(), CONFIG)

    def test_scheduler_still_accepts_clean_specs(self):
        service = WalkService(GRAPH, fleet=DeviceFleet(DEVICE))
        scheduler = service.scheduler()
        session = scheduler.session(DeepWalkSpec(), CONFIG)
        session.submit(queries(3))
        scheduler.run_until_idle(max_ticks=500)
        assert len(session.collect().paths) == 3


class TestWarningsSurfaceInResults:
    @pytest.mark.filterwarnings("ignore::repro.errors.CompilerWarning")
    def test_compiler_fallback_warnings_reach_summary(self):
        service = WalkService(GRAPH, fleet=DeviceFleet(DEVICE))
        session = service.session(_LoopFallbackSpec(), CONFIG)
        session.submit(queries(2))
        result = session.collect()
        assert result.compiler_warnings
        assert any("loop" in w for w in result.compiler_warnings)
        assert result.summary()["compiler_warnings"] == list(result.compiler_warnings)

    def test_supported_spec_has_no_compiler_warnings(self):
        service = WalkService(GRAPH, fleet=DeviceFleet(DEVICE))
        session = service.session(DeepWalkSpec(), CONFIG)
        session.submit(queries(2))
        result = session.collect()
        assert result.compiler_warnings == ()
        assert result.summary()["compiler_warnings"] == []
