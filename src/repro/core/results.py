"""Result summarisation helpers for walk runs.

.. deprecated::
    :func:`summarize_run` is a thin backward-compatibility wrapper over
    :meth:`repro.runtime.engine.WalkRunResult.summary` — the method is the
    single source of truth, so the two can never drift.  Call
    ``result.summary()`` directly in new code.
"""

from __future__ import annotations

import warnings

from repro.runtime.engine import WalkRunResult


def summarize_run(result: WalkRunResult) -> dict[str, object]:
    """Condense a walk run into the quantities reported in the paper's tables.

    .. deprecated:: use :meth:`WalkRunResult.summary` instead; this wrapper
       only delegates (and warns).
    """
    warnings.warn(
        "summarize_run is deprecated; call result.summary() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return result.summary()
