"""Cache-safety rules: the whole-spec state-freeness proof.

The cross-superstep :class:`~repro.sampling.transition_cache.TransitionCache`
serves one weight row per *node*.  That is sound only when every weight path
of the spec is a pure function of ``(graph, current node)``.  The compiler's
:func:`~repro.compiler.analyzer.analyze_get_weight` proves this for the
scalar ``get_weight`` — but the batched engine samples from
``transition_weights_batch`` and the per-node fill uses
``transition_weights``, so an override of either that *does* read walker
state silently diverges from the scalar proof and gets served stale cache
rows.  These rules close that gap:

``cache-safety/vector-state-divergence``
    ``transition_weights`` override reads walker state (anything beyond
    ``state.current_node``) while scalar ``get_weight`` is state-free.
``cache-safety/batch-state-divergence``
    ``transition_weights_batch`` override reads per-walker state
    (``batch.prev`` / ``batch.steps`` / ``batch.state(i)`` / ``batch.rng``
    ...) while scalar ``get_weight`` is state-free.
``cache-safety/update-batch-divergence``
    ``update_batch`` overridden while scalar ``update`` is not — the
    node-only check inspects only ``update``, so the batched engine would
    mutate state the proof assumed frozen.

The verdict's ``weights_state_free`` is the conjunction the runtime needs:
scalar path state-free AND no override reads state AND no update hook
overridden AND every weight-path source readable.
:attr:`~repro.compiler.generator.CompiledWorkload.weights_node_only`
requires it before a :class:`TransitionCache` is ever built.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.diagnostics import UNKNOWN_SPAN, Diagnostic, Severity, _DiagnosticCollector
from repro.analysis.hooks import HookSource, SpecSources, hook_overridden
from repro.walks.spec import WalkSpec

#: ``BatchStepContext`` members that expose per-walker, step-varying state.
BATCH_STATE_ATTRS = frozenset(
    {"prev", "steps", "frontier", "walkers", "rng", "state", "stream", "scalar_context"}
)

#: ``BatchStepContext`` members that are pure functions of the frontier's
#: *current nodes* (or framework plumbing) — safe under per-node caching.
BATCH_NODE_ONLY_ATTRS = frozenset(
    {
        "graph",
        "spec",
        "counters",
        "slots",
        "bound_hints",
        "sum_hints",
        "warp_width",
        "transition_cache",
        "arena",
        "size",
        "current",
        "edge_start",
        "degrees",
        "offsets",
        "seg_ids",
        "flat_edges",
        "neighbors_flat",
        "edge_mask",
        "charge",
        "gather_weights",
        "transition_weights",
        "subset",
        "absorb",
    }
)

#: The only ``WalkerState`` attribute a node-only ``transition_weights``
#: override may read.
SCALAR_NODE_ONLY_ATTRS = frozenset({"current_node"})


@dataclass
class CacheSafetyVerdict:
    """Outcome of the cache-safety family for one spec."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Whole-spec proof that every weight path ignores walker state.
    weights_state_free: bool = False
    #: Scalar ``get_weight`` state usage (True when unknown — conservative).
    scalar_reads_state: bool = True


def _parent_map(func: ast.AST) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(func):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def _arg_name(source: HookSource, index: int, default: str) -> str:
    if len(source.arg_names) > index:
        return source.arg_names[index]
    return default


def _names_in(func: ast.AST) -> set[str]:
    return {node.id for node in ast.walk(func) if isinstance(node, ast.Name)}


def _state_uses(
    source: HookSource,
    arg: str,
    benign_attrs: frozenset[str],
    state_attrs: frozenset[str] | None = None,
) -> list[tuple[ast.AST, str]]:
    """Every use of ``arg`` that could make the hook state-dependent.

    Attribute reads in ``benign_attrs`` are proven node-only; reads in
    ``state_attrs`` (when given) are proven state-dependent; anything else —
    unknown attributes, or the object escaping bare into a call/subscript —
    is conservatively treated as a state read.
    """
    uses: list[tuple[ast.AST, str]] = []
    parents = _parent_map(source.func)
    for node in ast.walk(source.func):
        if not (isinstance(node, ast.Name) and node.id == arg):
            continue
        parent = parents.get(node)
        if isinstance(parent, ast.Attribute) and parent.value is node:
            attr = parent.attr
            if attr in benign_attrs:
                continue
            if state_attrs is not None and attr in state_attrs:
                uses.append((parent, f"reads per-walker state {arg}.{attr}"))
            else:
                uses.append(
                    (parent, f"reads {arg}.{attr}, not provably node-only")
                )
        else:
            uses.append((node, f"{arg} escapes the hook (passed or used whole)"))
    return uses


def check_cache_safety(spec: WalkSpec, sources: SpecSources) -> CacheSafetyVerdict:
    """Run the cache-safety family and compute the whole-spec proof."""
    verdict = CacheSafetyVerdict()
    out = _DiagnosticCollector()

    # Scalar proof: same criterion as analyze_get_weight.reads_state — any
    # mention of the state parameter, branch conditions included.
    scalar = sources.hook("get_weight")
    if scalar is not None:
        state_arg = _arg_name(scalar, 2, "state")
        verdict.scalar_reads_state = state_arg in _names_in(scalar.func)
    scalar_known = scalar is not None
    state_free = scalar_known and not verdict.scalar_reads_state

    # Vector override: only state.current_node is node-only.
    vector = sources.hook("transition_weights")
    if vector is not None:
        uses = _state_uses(vector, _arg_name(vector, 2, "state"), SCALAR_NODE_ONLY_ATTRS)
        if uses:
            state_free = False
            if scalar_known and not verdict.scalar_reads_state:
                for node, reason in uses:
                    out.add(
                        "cache-safety/vector-state-divergence",
                        Severity.ERROR,
                        f"transition_weights {reason} while get_weight is state-free; "
                        "a per-node TransitionCache row would go stale",
                        span=vector.span(node),
                        hook="transition_weights",
                        fix_hint="make both paths agree: drop the state read or read it in get_weight too",
                    )
    elif hook_overridden(spec, "transition_weights"):
        state_free = False  # overridden but unreadable — assume the worst

    # Batch override: the engine's actual sampling path.
    batch = sources.hook("transition_weights_batch")
    if batch is not None:
        uses = _state_uses(
            batch,
            _arg_name(batch, 2, "batch"),
            BATCH_NODE_ONLY_ATTRS,
            state_attrs=BATCH_STATE_ATTRS,
        )
        if uses:
            state_free = False
            if scalar_known and not verdict.scalar_reads_state:
                for node, reason in uses:
                    out.add(
                        "cache-safety/batch-state-divergence",
                        Severity.ERROR,
                        f"transition_weights_batch {reason} while get_weight is "
                        "state-free; the batched engine would be served stale "
                        "TransitionCache rows",
                        span=batch.span(node),
                        hook="transition_weights_batch",
                        fix_hint="make both paths agree: drop the state read or read it in get_weight too",
                    )
    elif hook_overridden(spec, "transition_weights_batch"):
        state_free = False

    # Update hooks: any per-step mutation voids the frozen-weights premise,
    # and an update_batch-only override dodges the runtime's update check.
    update_overridden = hook_overridden(spec, "update")
    update_batch_overridden = hook_overridden(spec, "update_batch")
    if update_overridden or update_batch_overridden:
        state_free = False
    if update_batch_overridden and not update_overridden:
        source = sources.hook("update_batch")
        out.add(
            "cache-safety/update-batch-divergence",
            Severity.ERROR,
            "update_batch is overridden but update is not; node-only checks "
            "inspect update, so the batched engine would mutate state the "
            "cache proof assumed frozen",
            span=source.span(source.func) if source is not None else UNKNOWN_SPAN,
            hook="update_batch",
            fix_hint="override update as well (or instead) so both engines agree",
        )

    verdict.diagnostics = out.diagnostics
    verdict.weights_state_free = state_free
    return verdict
