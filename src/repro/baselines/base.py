"""The shared baseline-system model.

A baseline system is described by:

* the **sampling strategy** it publishes (a factory that may inspect the
  workload — e.g. NextDoor only avoids the max reduction when the bound is a
  compile-time constant, ThunderRW switches between RJS and ITS);
* the **platform** it runs on (GPU or CPU device preset);
* its **per-step framework overhead** (e.g. NextDoor's transit-parallel
  regrouping, the out-of-core systems' block reloads);
* its **memory-footprint model**, evaluated against the *paper-scale* graph
  sizes so the OOM outcomes of Table 2 / Fig. 10 are reproduced even though
  the walks themselves run on the scale-model graphs.

The walks are executed by the same :class:`~repro.runtime.engine.WalkEngine`
FlexiWalker uses, with a fixed selector — the differences between systems are
exactly the differences the paper attributes to them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

from repro.compiler.analyzer import analyze_get_weight
from repro.compiler.flags import BoundGranularity
from repro.compiler.generator import CompiledWorkload, compile_workload
from repro.graph.csr import CSRGraph
from repro.graph.datasets import DatasetSpec
from repro.gpusim.device import DeviceSpec
from repro.gpusim.memory import MemoryModel
from repro.runtime.engine import StepOverhead, WalkEngine, WalkRunResult
from repro.runtime.selector import FixedSelector
from repro.sampling.base import Sampler
from repro.sampling.erjs import EnhancedRejectionSampler
from repro.sampling.rejection import RejectionSampler
from repro.walks.spec import WalkSpec
from repro.walks.state import WalkQuery

#: A sampler factory receives the workload and returns the kernel the system
#: would use for it (some systems switch strategies by workload).
SamplerFactory = Callable[[WalkSpec], Sampler]


@dataclass
class BaselineSystem:
    """Model of one published random-walk system."""

    name: str
    platform: str
    device: DeviceSpec
    sampler_factory: SamplerFactory
    description: str = ""
    memory_model: MemoryModel = field(default_factory=MemoryModel)
    step_overhead: StepOverhead | None = None
    scheduling: str = "dynamic"
    uses_static_bound: bool = False

    # ------------------------------------------------------------------ #
    def build_engine(self, graph: CSRGraph, spec: WalkSpec, seed: int = 0, weight_bytes: int = 8) -> WalkEngine:
        """Assemble the walk engine that models this system for one workload."""
        sampler = self.sampler_factory(spec)
        compiled: CompiledWorkload | None = None
        if self.uses_static_bound:
            # Systems like NextDoor pre-compute the proposal bound only when
            # it is a compile-time constant (unweighted Node2Vec); otherwise
            # they fall back to per-step max reductions, which is what the
            # plain rejection kernel does when no hint is available.
            analysis = analyze_get_weight(spec)
            if analysis.supported and analysis.granularity is BoundGranularity.PER_KERNEL:
                compiled = compile_workload(spec, graph, device=self.device)
                if isinstance(sampler, RejectionSampler):
                    # A rejection kernel that knows its constant bound never
                    # scans the weight list: that behaviour is exactly the
                    # bound-hint rejection kernel.
                    sampler = EnhancedRejectionSampler()
        return WalkEngine(
            graph=graph,
            spec=spec,
            device=self.device,
            selector=FixedSelector(sampler),
            compiled=compiled,
            seed=seed,
            weight_bytes=weight_bytes,
            scheduling=self.scheduling,
            selection_overhead=False,
            warp_switch_overhead=False,
            step_overhead=self.step_overhead,
        )

    def run(
        self,
        graph: CSRGraph,
        spec: WalkSpec,
        queries: list[WalkQuery],
        seed: int = 0,
        weight_bytes: int = 8,
    ) -> WalkRunResult:
        """Execute a batch of walk queries under this system's model."""
        engine = self.build_engine(graph, spec, seed=seed, weight_bytes=weight_bytes)
        return engine.run(queries)

    # ------------------------------------------------------------------ #
    def required_memory_bytes(
        self,
        dataset: DatasetSpec,
        num_queries: int | None = None,
        weight_bytes: int = 4,
    ) -> int:
        """Device memory this system would need on the *paper-scale* graph."""
        queries = dataset.paper_nodes if num_queries is None else num_queries
        return self.memory_model.required_bytes(
            dataset.paper_nodes, dataset.paper_edges, queries, weight_bytes
        )

    def fits_in_memory(
        self,
        dataset: DatasetSpec,
        num_queries: int | None = None,
        weight_bytes: int = 4,
    ) -> bool:
        """Whether the paper-scale run fits on this system's device (OOM model)."""
        return (
            self.required_memory_bytes(dataset, num_queries, weight_bytes)
            <= self.device.memory_bytes
        )

    @property
    def is_gpu(self) -> bool:
        return self.platform == "gpu"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BaselineSystem({self.name!r}, {self.platform})"
