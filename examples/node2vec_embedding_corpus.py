"""Generate a Node2Vec walk corpus for embedding training.

This is the workload that motivates the paper's introduction: graph
representation learning pipelines (DeepWalk, Node2Vec, struc2vec, ...) feed a
skip-gram model with node sequences produced by random walks, and the walk
generation step dominates end-to-end training time on large graphs.

The example builds a social-network scale model, produces a Node2Vec corpus
with FlexiWalker, and derives the co-occurrence statistics an embedding
trainer would consume.  It also runs the same corpus generation through the
FlowWalker baseline model to show the simulated speedup, and through DeepWalk
(first-order walks) to show how the second-order bias changes the corpus.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro import DeepWalkSpec, Node2VecSpec, WalkService, load_dataset
from repro.baselines import make_baseline
from repro.walks.state import make_queries

WALK_LENGTH = 20
WINDOW = 3


def cooccurrence_pairs(paths: list[list[int]], window: int) -> Counter:
    """Skip-gram style (center, context) pair counts from walk paths."""
    pairs: Counter = Counter()
    for path in paths:
        for i, center in enumerate(path):
            for j in range(max(0, i - window), min(len(path), i + window + 1)):
                if i != j:
                    pairs[(center, path[j])] += 1
    return pairs


def main() -> None:
    graph = load_dataset("OK", weights="uniform")
    print(f"graph: {graph}")
    queries = make_queries(graph.num_nodes, walk_length=WALK_LENGTH, num_queries=400, seed=1)

    # --- FlexiWalker: the adaptive pipeline, via the serving API --------
    # One service holds the graph and every compiled artifact; the Node2Vec
    # and DeepWalk sessions below share it.
    service = WalkService(graph)
    session = service.session(Node2VecSpec(a=2.0, b=0.5))
    session.submit(queries)
    result = session.collect()
    print(f"FlexiWalker corpus: {len(result.paths)} walks, "
          f"{sum(len(p) - 1 for p in result.paths)} steps, "
          f"{result.time_ms:.4f} ms simulated")
    print(f"  kernel mix: {result.selection_ratio()}")

    # --- FlowWalker baseline for comparison -----------------------------
    flow = make_baseline("FlowWalker")
    flow_result = flow.run(graph, Node2VecSpec(a=2.0, b=0.5), queries, seed=1)
    print(f"FlowWalker baseline:  {flow_result.time_ms:.4f} ms simulated "
          f"({flow_result.time_ms / result.time_ms:.2f}x slower)")

    # --- What the embedding trainer sees ---------------------------------
    pairs = cooccurrence_pairs(result.paths, WINDOW)
    print(f"corpus yields {len(pairs)} distinct (center, context) pairs")
    most_common = pairs.most_common(5)
    print("most frequent co-occurrences:", most_common)

    # --- Second-order bias vs a first-order (DeepWalk) corpus ------------
    deep_session = service.session(DeepWalkSpec())
    deep_session.submit(queries)
    deep = deep_session.collect()
    n2v_unique = np.mean([len(set(p)) / len(p) for p in result.paths])
    dw_unique = np.mean([len(set(p)) / len(p) for p in deep.paths])
    print(f"distinct-node fraction per walk: node2vec={n2v_unique:.3f}, deepwalk={dw_unique:.3f}")
    print("(Node2Vec with a=2, b=0.5 explores further from the start node, "
          "which is exactly the high-order structure static walks miss.)")


if __name__ == "__main__":
    main()
