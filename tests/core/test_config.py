"""Tests for FlexiWalker configuration validation."""

from __future__ import annotations

import pytest

from repro.core.config import SELECTION_POLICIES, FlexiWalkerConfig
from repro.errors import ReproError
from repro.gpusim.device import EPYC_9124P


class TestFlexiWalkerConfig:
    def test_defaults_reproduce_paper_setup(self):
        config = FlexiWalkerConfig()
        assert config.selection == "cost_model"
        assert config.run_profiling
        assert config.weight_bytes == 8
        assert config.warp_width == 32

    def test_all_selection_policies_accepted(self):
        for policy in SELECTION_POLICIES:
            assert FlexiWalkerConfig(selection=policy).selection == policy

    def test_unknown_policy_rejected(self):
        with pytest.raises(ReproError):
            FlexiWalkerConfig(selection="oracle")

    def test_invalid_weight_bytes_rejected(self):
        with pytest.raises(ReproError):
            FlexiWalkerConfig(weight_bytes=3)

    def test_int8_weight_bytes_accepted(self):
        assert FlexiWalkerConfig(weight_bytes=1).weight_bytes == 1

    def test_invalid_warp_width_rejected(self):
        with pytest.raises(ReproError):
            FlexiWalkerConfig(warp_width=0)

    def test_invalid_degree_threshold_rejected(self):
        with pytest.raises(ReproError):
            FlexiWalkerConfig(degree_threshold=0)

    def test_default_is_single_device_hash(self):
        config = FlexiWalkerConfig()
        assert config.num_devices == 1
        assert config.partition_policy == "hash"

    def test_all_partition_policies_accepted(self):
        from repro.gpusim.multigpu import PARTITION_POLICIES

        for policy in PARTITION_POLICIES:
            config = FlexiWalkerConfig(num_devices=4, partition_policy=policy)
            assert config.partition_policy == policy

    def test_unknown_partition_policy_rejected(self):
        with pytest.raises(ReproError):
            FlexiWalkerConfig(partition_policy="round-robin")

    def test_invalid_device_count_rejected(self):
        with pytest.raises(ReproError):
            FlexiWalkerConfig(num_devices=0)

    def test_custom_device(self):
        assert FlexiWalkerConfig(device=EPYC_9124P).device.name.startswith("AMD")

    def test_config_is_immutable(self):
        config = FlexiWalkerConfig()
        with pytest.raises(AttributeError):
            config.selection = "random"  # type: ignore[misc]
