"""Diagnostic vocabulary of the workload verifier.

Every rule in :mod:`repro.analysis` — the whole-spec verifier
(:func:`repro.analysis.verify_spec`) and the internal invariant linter
(:mod:`repro.analysis.codebase`) — reports findings as structured
:class:`Diagnostic` records: a stable rule id, a severity, a source span
and a fix hint.  Structured diagnostics are what let the rest of the stack
consume verdicts mechanically: ``negotiate_plan`` records rule ids as plan
reasons, ``scripts/lint_spec.py`` turns severities into exit codes, and the
test suite asserts on rule ids and spans instead of message prose.

Suppression
-----------
A diagnostic is suppressed by a trailing comment on its source line::

    self._clock = time.perf_counter()  # repro: ignore[determinism/wall-clock]

``# repro: ignore`` with no bracket suppresses every rule on the line.
Suppression is applied by :func:`filter_suppressed`, which both the spec
verifier and the internal linter run over their raw findings.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so comparisons read naturally."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class SourceSpan:
    """Location of a finding in user (or repository) source code.

    ``line``/``end_line`` are 1-based absolute line numbers in ``file``;
    ``col``/``end_col`` are 0-based column offsets, matching the CPython
    AST convention so editors and CI annotations can consume them directly.
    """

    file: str
    line: int
    end_line: int = 0
    col: int = 0
    end_col: int = 0

    def __post_init__(self) -> None:
        if self.end_line < self.line:
            object.__setattr__(self, "end_line", self.line)

    def __str__(self) -> str:
        return f"{self.file}:{self.line}:{self.col}"


#: Span used when no source location exists (e.g. a callable whose source
#: cannot be read); keeps every Diagnostic uniformly shaped.
UNKNOWN_SPAN = SourceSpan(file="<unknown>", line=0)


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule.

    Attributes
    ----------
    rule:
        Stable ``family/short-name`` identifier (e.g.
        ``"determinism/unseeded-rng"``).  The rule catalog lives in the
        README's *Static analysis* section.
    severity:
        :class:`Severity`; ERROR findings gate transition caching,
        scheduler fusion and the lint CLIs' exit codes.
    message:
        One-sentence statement of the defect.
    span:
        Where the finding anchors in source.
    hook:
        The spec hook (or internal file context) the finding was raised
        in, e.g. ``"transition_weights_batch"``; empty for file-level
        findings.
    fix_hint:
        Actionable remediation, shown by the CLIs.
    """

    rule: str
    severity: Severity
    message: str
    span: SourceSpan = UNKNOWN_SPAN
    hook: str = ""
    fix_hint: str = ""

    def format(self) -> str:
        """CI-friendly one-line rendering (severity, rule id, span, hint)."""
        where = f" [{self.hook}]" if self.hook else ""
        hint = f" (fix: {self.fix_hint})" if self.fix_hint else ""
        return f"{self.severity.name:7s} {self.rule:34s} {self.span}{where}: {self.message}{hint}"


#: ``# repro: ignore`` / ``# repro: ignore[rule-id]`` trailing comments.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore(?:\[(?P<rules>[^\]]+)\])?")


def line_suppressions(source_line: str) -> set[str] | None:
    """Rules suppressed by one source line.

    Returns ``None`` when the line carries no suppression, the empty set for
    a blanket ``# repro: ignore``, and the set of rule ids otherwise.
    """
    match = _SUPPRESS_RE.search(source_line)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return set()
    return {rule.strip() for rule in rules.split(",") if rule.strip()}


def filter_suppressed(
    diagnostics: list[Diagnostic],
    get_line,
) -> list[Diagnostic]:
    """Drop diagnostics whose source line carries a matching suppression.

    ``get_line(file, lineno)`` must return the raw source line (or ``""``
    when unavailable — unavailable lines never suppress anything).
    """
    kept: list[Diagnostic] = []
    for diag in diagnostics:
        rules = line_suppressions(get_line(diag.span.file, diag.span.line))
        if rules is not None and (not rules or diag.rule in rules):
            continue
        kept.append(diag)
    return kept


@dataclass(frozen=True)
class SpecReport:
    """The verifier's verdict on one :class:`~repro.walks.spec.WalkSpec`.

    Attached to every :class:`~repro.compiler.generator.CompiledWorkload`
    by :func:`~repro.compiler.generator.compile_workload` and consumed by
    :func:`~repro.service.plan.negotiate_plan`: ERROR findings decline
    transition caching and scheduler fusion (and raise under
    ``ServiceCapabilities.strict_verification``).

    Attributes
    ----------
    spec_class / spec_name:
        The verified workload's class qualname and ``name`` tag.
    diagnostics:
        Every surviving (unsuppressed) finding, all rule families.
    hooks_analyzed:
        The user-overridden hooks whose source was analysed.
    weights_state_free:
        The whole-spec cache-safety proof: True only when **every**
        weight path — scalar ``get_weight`` *and* any
        ``transition_weights`` / ``transition_weights_batch`` /
        ``static_transition_weights`` override — is independent of walker
        state and no ``update`` / ``update_batch`` hook is overridden.
        This is the soundness condition for the cross-superstep
        :class:`~repro.sampling.transition_cache.TransitionCache`;
        :attr:`~repro.compiler.generator.CompiledWorkload.weights_node_only`
        requires it.
    """

    spec_class: str
    spec_name: str
    diagnostics: tuple[Diagnostic, ...] = ()
    hooks_analyzed: tuple[str, ...] = ()
    weights_state_free: bool = False

    # ------------------------------------------------------------------ #
    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity >= Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return any(d.severity >= Severity.ERROR for d in self.diagnostics)

    def rule_ids(self, minimum: Severity = Severity.INFO) -> tuple[str, ...]:
        """Sorted distinct rule ids at or above ``minimum`` severity."""
        return tuple(sorted({d.rule for d in self.diagnostics if d.severity >= minimum}))

    def by_rule(self, rule: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.rule == rule)

    def format(self) -> str:
        """Multi-line human/CI rendering of the whole report."""
        header = (
            f"{self.spec_class} ({self.spec_name!r}): "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        lines = [header]
        lines.extend(d.format() for d in sorted(self.diagnostics, key=lambda d: -d.severity))
        return "\n".join(lines)


@dataclass
class _DiagnosticCollector:
    """Mutable accumulation helper shared by the rule implementations."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(
        self,
        rule: str,
        severity: Severity,
        message: str,
        span: SourceSpan = UNKNOWN_SPAN,
        hook: str = "",
        fix_hint: str = "",
    ) -> None:
        self.diagnostics.append(
            Diagnostic(
                rule=rule,
                severity=severity,
                message=message,
                span=span,
                hook=hook,
                fix_hint=fix_hint,
            )
        )
