"""Graph I/O: plain edge-list text files and binary CSR caches.

The real FlexiWalker loads SNAP/LAW edge lists and caches a preprocessed CSR
binary.  The same two paths exist here: a whitespace-separated edge-list
reader/writer (optionally with a weight and a label column) and an ``.npz``
CSR cache for fast reload in the benchmark harness.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builders import from_edge_list
from repro.graph.csr import CSRGraph


def read_edge_list(
    path: str | Path,
    weighted: bool = False,
    labeled: bool = False,
    comment: str = "#",
    num_nodes: int | None = None,
    name: str | None = None,
) -> CSRGraph:
    """Read a whitespace-separated edge-list file into a CSR graph.

    Each non-comment line contains ``src dst [weight] [label]``; the optional
    columns are parsed when ``weighted`` / ``labeled`` are set.
    """
    path = Path(path)
    edges: list[tuple[int, int]] = []
    weights: list[float] = []
    labels: list[int] = []
    expected_cols = 2 + int(weighted) + int(labeled)
    with path.open() as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) < expected_cols:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected at least {expected_cols} columns, got {len(parts)}"
                )
            try:
                src, dst = int(parts[0]), int(parts[1])
                edges.append((src, dst))
                col = 2
                if weighted:
                    weights.append(float(parts[col]))
                    col += 1
                if labeled:
                    labels.append(int(parts[col]))
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: could not parse {line!r}") from exc
    return from_edge_list(
        edges,
        num_nodes=num_nodes,
        weights=weights if weighted else None,
        labels=labels if labeled else None,
        name=name if name is not None else path.stem,
    )


def write_edge_list(graph: CSRGraph, path: str | Path, include_weights: bool = True) -> None:
    """Write a graph to a plain edge-list file (one edge per line)."""
    path = Path(path)
    src = np.repeat(np.arange(graph.num_nodes, dtype=np.int64), graph.degrees())
    with path.open("w") as handle:
        handle.write(f"# {graph.name or 'graph'}: {graph.num_nodes} nodes, {graph.num_edges} edges\n")
        for i in range(graph.num_edges):
            if include_weights:
                handle.write(f"{src[i]} {graph.indices[i]} {graph.weights[i]:.6g}\n")
            else:
                handle.write(f"{src[i]} {graph.indices[i]}\n")


def save_csr_npz(graph: CSRGraph, path: str | Path) -> None:
    """Save the CSR arrays to a compressed ``.npz`` cache file."""
    path = Path(path)
    arrays = {
        "indptr": graph.indptr,
        "indices": graph.indices,
        "weights": graph.weights,
        "name": np.array(graph.name),
    }
    if graph.labels is not None:
        arrays["labels"] = graph.labels
    np.savez_compressed(path, **arrays)


def load_csr_npz(path: str | Path) -> CSRGraph:
    """Load a graph previously stored with :func:`save_csr_npz`."""
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            return CSRGraph(
                indptr=data["indptr"],
                indices=data["indices"],
                weights=data["weights"],
                labels=data["labels"] if "labels" in data else None,
                name=str(data["name"]) if "name" in data else "",
            )
    except (OSError, KeyError, ValueError) as exc:
        raise GraphFormatError(f"could not load CSR cache from {path}") from exc
