"""Shared fixtures for the service-layer test suite."""

from __future__ import annotations

import dataclasses

import pytest

from repro.gpusim.device import A6000
from repro.graph.generators import barabasi_albert_graph
from repro.graph.labels import random_edge_labels
from repro.graph.weights import uniform_weights

#: Small device so query batches oversubscribe the lanes like paper-scale runs.
DEVICE = dataclasses.replace(A6000, parallel_lanes=8)


@pytest.fixture(scope="module")
def service_graph():
    graph = barabasi_albert_graph(60, 3, seed=11, name="service-test")
    graph = graph.with_weights(uniform_weights(graph, seed=11))
    return graph.with_labels(random_edge_labels(graph, num_labels=5, seed=11))
