"""Configuration of the FlexiWalker facade."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ReproError
from repro.gpusim.device import A6000, DeviceSpec
from repro.gpusim.multigpu import PARTITION_POLICIES
from repro.graph.sharded import SHARD_POLICIES
from repro.runtime.engine import EXECUTION_MODES, GRAPH_PLACEMENTS

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.runtime.faults import FaultPlan

#: Valid values of :attr:`FlexiWalkerConfig.graph_placement` — the engine
#: placements plus ``"auto"`` (negotiated from the graph's memory footprint
#: against the fleet device's memory).
GRAPH_PLACEMENT_REQUESTS = ("auto",) + GRAPH_PLACEMENTS

#: Valid values of :attr:`FlexiWalkerConfig.selection`.
SELECTION_POLICIES = ("cost_model", "ervs_only", "erjs_only", "random", "degree")


@dataclass(frozen=True)
class FlexiWalkerConfig:
    """Tunable knobs of the FlexiWalker pipeline.

    Attributes
    ----------
    device:
        Simulated execution device (defaults to the A6000 preset).
    selection:
        Sampling-strategy selection policy: ``"cost_model"`` (the paper's
        adaptive runtime, default), ``"ervs_only"`` / ``"erjs_only"`` (the
        Fig. 11 ablations), ``"random"`` or ``"degree"`` (the Fig. 13
        baselines).
    degree_threshold:
        Threshold of the degree-based policy (1 000 in the paper).
    run_profiling:
        Run the start-up profiling kernels that calibrate the cost-model
        ratio; when off, the device's nominal random/coalesced ratio is used.
    selection_overhead / warp_switch_overhead:
        Account the per-step cost of runtime selection and of the concurrent
        RJS/RVS warp switching (Section 5.2).  On by default — they are part
        of the honest end-to-end cost.
    weight_bytes:
        Stored property-weight width: 8 (float64) or 1 (INT8, Section 7.2).
    warp_width:
        Cooperative width of warp kernels.
    scheduling:
        ``"dynamic"`` (global query queue, Section 5.3) or ``"static"``.
    execution:
        Walk-engine execution mode: ``"batched"`` (default) runs all active
        walkers through the step-synchronous vectorised frontier loop;
        ``"scalar"`` interprets one query at a time.  Both modes produce
        identical walks, counters and simulated timings for a fixed seed
        policy — the scalar mode is kept for exact-parity checks.
    num_devices:
        Number of replicated-graph devices the query batch is partitioned
        over (Fig. 15).  Each device runs its own frontier/scheduler
        instance of the configured execution mode; because walker randomness
        is counter-based per query id, the walks and counter totals are
        identical for every device count — only the makespan changes.
    partition_policy:
        Query-to-device mapping used when ``num_devices > 1``: ``"hash"``
        (multiplicative start-node hashing, the paper's choice), ``"range"``
        (contiguous slices) or ``"balanced"`` (greedy longest-processing-time
        packing by start-node degree).
    graph_placement:
        How a multi-device run places the graph: ``"auto"`` (default —
        plan negotiation picks ``"sharded"`` exactly when the graph's
        memory footprint exceeds one fleet device's memory, else
        ``"replicated"``), or an explicit ``"replicated"`` / ``"sharded"``
        request.
    shard_policy:
        Node decomposition for sharded placement: ``"contiguous"`` (equal
        node ranges), ``"degree_balanced"`` (edge-count-balanced
        boundaries) or ``"locality"`` (streaming LDG-style partitioning
        that co-locates neighbourhoods to cut remote edges).
    ghost_cache_bytes:
        Per-shard ghost-node cache budget for sharded placement: each
        shard replicates the adjacency of the hottest (highest-degree)
        remote nodes within this byte budget, so walkers stepping onto a
        cached hub pay no migration.  0 (default) disables ghost caching.
    seed:
        Seed for every random stream the run derives.
    checkpoint_interval:
        Take a walker-state checkpoint every this many supersteps (the
        fault-tolerance subsystem, :mod:`repro.runtime.faults`).  0
        (default) disables explicit checkpointing; recovery then replays
        from the implicit cost-free checkpoint of the initial state.
        Checkpointing requires the batched execution mode.
    fault_plan:
        Optional :class:`~repro.runtime.faults.FaultPlan` of deterministic
        injected faults.  Recovered runs stay bit-identical to fault-free
        runs in paths, counters and per-query base times — only simulated
        time differs.  Requires the batched execution mode.
    """

    device: DeviceSpec = A6000
    selection: str = "cost_model"
    degree_threshold: int = 1000
    run_profiling: bool = True
    selection_overhead: bool = True
    warp_switch_overhead: bool = True
    weight_bytes: int = 8
    warp_width: int = 32
    scheduling: str = "dynamic"
    execution: str = "batched"
    num_devices: int = 1
    partition_policy: str = "hash"
    graph_placement: str = "auto"
    shard_policy: str = "contiguous"
    ghost_cache_bytes: int = 0
    seed: int = 0
    checkpoint_interval: int = 0
    fault_plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.selection not in SELECTION_POLICIES:
            raise ReproError(
                f"unknown selection policy {self.selection!r}; valid: {SELECTION_POLICIES}"
            )
        if self.execution not in EXECUTION_MODES:
            raise ReproError(
                f"unknown execution mode {self.execution!r}; valid: {EXECUTION_MODES}"
            )
        if self.num_devices < 1:
            raise ReproError("num_devices must be at least 1")
        if self.partition_policy not in PARTITION_POLICIES:
            raise ReproError(
                f"unknown partition policy {self.partition_policy!r}; "
                f"valid: {PARTITION_POLICIES}"
            )
        if self.graph_placement not in GRAPH_PLACEMENT_REQUESTS:
            raise ReproError(
                f"unknown graph placement {self.graph_placement!r}; "
                f"valid: {GRAPH_PLACEMENT_REQUESTS}"
            )
        if self.shard_policy not in SHARD_POLICIES:
            raise ReproError(
                f"unknown shard policy {self.shard_policy!r}; valid: {SHARD_POLICIES}"
            )
        if self.ghost_cache_bytes < 0:
            raise ReproError("ghost_cache_bytes must be non-negative")
        if self.weight_bytes not in (1, 2, 4, 8):
            raise ReproError("weight_bytes must be one of 1, 2, 4, 8")
        if self.warp_width < 1:
            raise ReproError("warp_width must be at least 1")
        if self.degree_threshold < 1:
            raise ReproError("degree_threshold must be at least 1")
        if self.checkpoint_interval < 0:
            raise ReproError("checkpoint_interval must be non-negative")
        if self.execution == "scalar" and (
            self.checkpoint_interval > 0
            or (self.fault_plan is not None and not self.fault_plan.empty)
        ):
            raise ReproError(
                "fault injection and checkpointing require the batched execution mode"
            )
