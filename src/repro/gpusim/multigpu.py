"""Multi-GPU execution model (Fig. 15).

The paper scales FlexiWalker to four GPUs by replicating the graph on every
device and partitioning the walk queries across them — hash-based index
mapping of the start nodes, because naive range-based mapping showed lower
scalability.  This module holds the partitioning policies and the
:class:`MultiGPUExecutor` front-end.  The executor drives the *real* walk
engine: each partition runs through its own step-synchronous frontier loop
(one :class:`~repro.walks.state.WalkerFrontier` and one
:class:`~repro.runtime.scheduler.DynamicQueryQueue` per simulated device) and
the job finishes when the slowest device does.  A legacy cost-array replay
(:meth:`MultiGPUExecutor.execute`) is kept for analyses that only have
per-query times, e.g. what-if makespan studies.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SimulationError
from repro.gpusim.counters import CostCounters
from repro.gpusim.device import DeviceSpec
from repro.gpusim.executor import KernelExecutor, KernelResult

if TYPE_CHECKING:  # pragma: no cover - engine imported lazily (layering)
    from repro.runtime.engine import WalkEngine, WalkRunResult
    from repro.walks.state import WalkQuery

#: Valid values of the query-partitioning policy.
PARTITION_POLICIES = ("hash", "range", "balanced")


def occupied_load_imbalance(kernels: list[KernelResult]) -> float:
    """Max-over-mean kernel time across devices that received work.

    The Fig. 15 imbalance statistic.  Only devices with at least one query
    participate: an idle device (possible when the device count exceeds the
    query count) reflects a partitioning choice, and letting its zero time
    deflate the mean would report imbalance where every *working* device is
    perfectly balanced.  1.0 when at most one device did any work.
    """
    times = np.array([k.time_ns for k in kernels if k.num_queries > 0])
    if times.size <= 1 or times.mean() == 0:
        return 1.0
    return float(times.max() / times.mean())


def partition_queries(
    start_nodes: np.ndarray,
    num_gpus: int,
    policy: str = "hash",
    costs: np.ndarray | None = None,
) -> list[np.ndarray]:
    """Partition query indices over ``num_gpus`` devices.

    ``"hash"`` assigns query ``i`` to GPU ``hash(start_node[i]) % num_gpus``
    (a cheap multiplicative hash), ``"range"`` slices the query array into
    contiguous equal ranges, and ``"balanced"`` greedily packs queries onto
    the least-loaded device in descending order of ``costs`` (longest
    processing time first) — a degree-aware policy when the caller passes
    start-node degrees, or an oracle when it passes measured per-query times.

    Empty partitions are valid output: when ``num_gpus`` exceeds the number
    of queries (or a policy simply maps nothing to a device) the surplus
    devices receive zero-length index arrays and idle for the whole kernel.
    Idle devices do not count toward load-imbalance statistics — see
    :attr:`MultiGPUResult.load_imbalance`.
    """
    start_nodes = np.asarray(start_nodes, dtype=np.int64)
    if num_gpus < 1:
        raise SimulationError("need at least one GPU")
    if policy == "hash":
        # Knuth multiplicative hash keeps assignment stable and well spread
        # even when start nodes are consecutive integers.
        hashed = (start_nodes * np.int64(2654435761)) & np.int64(0x7FFFFFFF)
        owner = hashed % num_gpus
    elif policy == "range":
        owner = (np.arange(start_nodes.size) * num_gpus) // max(start_nodes.size, 1)
    elif policy == "balanced":
        if costs is None:
            raise SimulationError(
                "the 'balanced' partition policy needs a per-query cost array "
                "(e.g. start-node degrees or measured per-query times)"
            )
        costs = np.asarray(costs, dtype=np.float64)
        if costs.shape != start_nodes.shape:
            raise SimulationError("costs and start_nodes must be parallel arrays")
        owner = _balanced_owners(costs, num_gpus)
    else:
        raise SimulationError(f"unknown partition policy {policy!r}")
    return [np.nonzero(owner == g)[0] for g in range(num_gpus)]


def _balanced_owners(costs: np.ndarray, num_gpus: int) -> np.ndarray:
    """Greedy longest-processing-time assignment of per-query costs to devices.

    Deterministic: queries are visited in descending cost (ties broken by
    query index) and each goes to the least-loaded device (ties broken by
    device index), so the same inputs always produce the same placement.
    """
    order = np.lexsort((np.arange(costs.size), -costs))
    owner = np.zeros(costs.size, dtype=np.int64)
    heap = [(0.0, g) for g in range(num_gpus)]
    heapq.heapify(heap)
    for i in order:
        load, gpu = heapq.heappop(heap)
        owner[i] = gpu
        heapq.heappush(heap, (load + float(costs[i]), gpu))
    return owner


@dataclass
class MultiGPUResult:
    """Outcome of a multi-GPU launch."""

    time_ns: float
    per_gpu: list[KernelResult]
    policy: str
    #: The full engine result when the launch ran the real walk engine
    #: (:meth:`MultiGPUExecutor.run`); ``None`` for cost-array replays.
    run: WalkRunResult | None = field(default=None, repr=False)

    @property
    def time_ms(self) -> float:
        return self.time_ns / 1e6

    def speedup_over(self, single_gpu_time_ns: float) -> float:
        if self.time_ns <= 0:
            return float("inf")
        return single_gpu_time_ns / self.time_ns

    @property
    def load_imbalance(self) -> float:
        """Max-over-mean time across occupied GPUs; the loss term on AB.

        See :func:`occupied_load_imbalance` for the idle-device rule.
        """
        return occupied_load_imbalance(self.per_gpu)


class MultiGPUExecutor:
    """Runs one walk workload across several replicated-graph GPUs."""

    def __init__(self, device: DeviceSpec, num_gpus: int) -> None:
        if num_gpus < 1:
            raise SimulationError("need at least one GPU")
        self.device = device
        self.num_gpus = num_gpus

    def run(
        self,
        engine: WalkEngine,
        queries: list[WalkQuery],
        policy: str = "hash",
    ) -> MultiGPUResult:
        """Drive the real walk engine across ``num_gpus`` replicated devices.

        The engine is re-targeted (not mutated) at this executor's device
        count and the requested partition policy, then every partition runs
        the full frontier loop.  Because walker randomness is counter-based
        per query id, the walks, per-query counters and per-query simulated
        times are identical to a single-device run — only the makespan (and
        hence the Fig. 15 speedup) depends on the placement.
        """
        multi = engine.with_devices(self.num_gpus, partition_policy=policy)
        result = multi.run(queries)
        per_gpu = result.device_kernels if result.device_kernels else [result.kernel]
        return MultiGPUResult(
            time_ns=result.kernel.time_ns, per_gpu=per_gpu, policy=policy, run=result
        )

    def execute(
        self,
        per_query_ns: np.ndarray,
        start_nodes: np.ndarray,
        policy: str = "hash",
        counters: CostCounters | None = None,
    ) -> MultiGPUResult:
        """Replay precomputed per-query costs: partition, execute, take the max.

        The legacy cost-array path — no walks are recomputed, so it can
        replay placements of runs that already happened (the ``"balanced"``
        policy then packs by the *measured* per-query times).  Experiments
        that need the honest end-to-end path use :meth:`run` instead.
        """
        per_query_ns = np.asarray(per_query_ns, dtype=np.float64)
        start_nodes = np.asarray(start_nodes, dtype=np.int64)
        if per_query_ns.shape != start_nodes.shape:
            raise SimulationError("per_query_ns and start_nodes must be parallel arrays")
        partitions = partition_queries(start_nodes, self.num_gpus, policy, costs=per_query_ns)
        executor = KernelExecutor(self.device)
        results = [
            executor.execute(per_query_ns[part], counters=counters, scheduling="dynamic")
            for part in partitions
        ]
        makespan = max((r.time_ns for r in results), default=0.0)
        return MultiGPUResult(time_ns=makespan, per_gpu=results, policy=policy)
