"""Builders that turn edge lists / adjacency structures into CSR graphs."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph


def from_edge_list(
    edges: Iterable[tuple[int, int]] | np.ndarray,
    num_nodes: int | None = None,
    weights: Sequence[float] | np.ndarray | None = None,
    labels: Sequence[int] | np.ndarray | None = None,
    name: str = "",
    deduplicate: bool = False,
) -> CSRGraph:
    """Build a directed CSR graph from an iterable of ``(src, dst)`` pairs.

    Neighbour lists are sorted by destination id so that
    :meth:`CSRGraph.has_edge` can use binary search.  Per-edge ``weights`` and
    ``labels`` follow their edge through the sort.
    """
    edge_arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges, dtype=np.int64)
    if edge_arr.size == 0:
        edge_arr = edge_arr.reshape(0, 2)
    if edge_arr.ndim != 2 or edge_arr.shape[1] != 2:
        raise GraphError("edges must be an iterable of (src, dst) pairs")

    src = edge_arr[:, 0]
    dst = edge_arr[:, 1]
    if edge_arr.shape[0] and (src.min() < 0 or dst.min() < 0):
        raise GraphError("node ids must be non-negative")

    inferred = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
    n = inferred if num_nodes is None else int(num_nodes)
    if n < inferred:
        raise GraphError(f"num_nodes={n} is smaller than the largest node id + 1 ({inferred})")

    weight_arr = None if weights is None else np.asarray(weights, dtype=np.float64)
    label_arr = None if labels is None else np.asarray(labels, dtype=np.int64)
    if weight_arr is not None and weight_arr.shape[0] != edge_arr.shape[0]:
        raise GraphError("weights must have one entry per edge")
    if label_arr is not None and label_arr.shape[0] != edge_arr.shape[0]:
        raise GraphError("labels must have one entry per edge")

    # Sort edges by (src, dst) to produce contiguous, sorted neighbour lists.
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    if weight_arr is not None:
        weight_arr = weight_arr[order]
    if label_arr is not None:
        label_arr = label_arr[order]

    if deduplicate and src.size:
        keep = np.ones(src.size, dtype=bool)
        keep[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
        src, dst = src[keep], dst[keep]
        if weight_arr is not None:
            weight_arr = weight_arr[keep]
        if label_arr is not None:
            label_arr = label_arr[keep]

    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)

    return CSRGraph(indptr=indptr, indices=dst, weights=weight_arr, labels=label_arr, name=name)


def from_adjacency(
    adjacency: Sequence[Sequence[int]],
    weights: Sequence[Sequence[float]] | None = None,
    name: str = "",
) -> CSRGraph:
    """Build a CSR graph from an adjacency-list representation.

    ``adjacency[v]`` is the list of out-neighbours of ``v``; ``weights`` when
    given must be parallel to it.
    """
    edges: list[tuple[int, int]] = []
    flat_weights: list[float] | None = [] if weights is not None else None
    for v, nbrs in enumerate(adjacency):
        nbr_weights = None if weights is None else weights[v]
        if nbr_weights is not None and len(nbr_weights) != len(nbrs):
            raise GraphError(f"weights for node {v} must be parallel to its adjacency list")
        for i, u in enumerate(nbrs):
            edges.append((v, int(u)))
            if flat_weights is not None and nbr_weights is not None:
                flat_weights.append(float(nbr_weights[i]))
    return from_edge_list(edges, num_nodes=len(adjacency), weights=flat_weights, name=name)


def to_undirected(graph: CSRGraph) -> CSRGraph:
    """Return the symmetric closure of ``graph`` (each edge mirrored).

    Property weights are copied onto the mirrored edges; duplicate edges are
    removed.  Edge labels are likewise mirrored when present.
    """
    src = np.repeat(np.arange(graph.num_nodes, dtype=np.int64), graph.degrees())
    dst = graph.indices
    both_src = np.concatenate([src, dst])
    both_dst = np.concatenate([dst, src])
    both_w = np.concatenate([graph.weights, graph.weights])
    both_l = None if graph.labels is None else np.concatenate([graph.labels, graph.labels])
    edges = np.stack([both_src, both_dst], axis=1)
    return from_edge_list(
        edges,
        num_nodes=graph.num_nodes,
        weights=both_w,
        labels=both_l,
        name=graph.name,
        deduplicate=True,
    )
