"""Session semantics: tickets, streaming, interleaving, multi-tenancy."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import FlexiWalkerConfig
from repro.errors import ServiceError
from repro.gpusim.device import A6000
from repro.service import DeviceFleet, WalkService
from repro.walks.deepwalk import DeepWalkSpec
from repro.walks.metapath import MetaPathSpec
from repro.walks.node2vec import Node2VecSpec
from repro.walks.state import WalkQuery, make_queries

DEVICE = dataclasses.replace(A6000, parallel_lanes=8)
CONFIG = FlexiWalkerConfig(device=DEVICE)


def make_service(graph, count: int = 1) -> WalkService:
    return WalkService(graph, fleet=DeviceFleet(DEVICE, count))


class TestSubmit:
    def test_submit_returns_tracking_ticket(self, service_graph):
        session = make_service(service_graph).session(Node2VecSpec(), CONFIG)
        queries = make_queries(service_graph.num_nodes, walk_length=4, num_queries=8)
        ticket = session.submit(queries)
        assert ticket.status == "queued"
        assert not ticket.done
        assert ticket.query_ids == tuple(q.query_id for q in queries)
        assert session.pending == 8

    def test_empty_submission_rejected(self, service_graph):
        session = make_service(service_graph).session(Node2VecSpec(), CONFIG)
        with pytest.raises(ServiceError):
            session.submit([])

    def test_duplicate_query_ids_rejected_across_submissions(self, service_graph):
        session = make_service(service_graph).session(Node2VecSpec(), CONFIG)
        queries = make_queries(service_graph.num_nodes, walk_length=4, num_queries=6)
        session.submit(queries)
        with pytest.raises(ServiceError):
            session.submit(queries[:2])

    def test_ticket_paths_unavailable_until_done(self, service_graph):
        session = make_service(service_graph).session(Node2VecSpec(), CONFIG)
        ticket = session.submit(make_queries(service_graph.num_nodes, walk_length=4, num_queries=5))
        with pytest.raises(ServiceError):
            ticket.paths()
        session.collect()
        assert ticket.done
        assert len(ticket.paths()) == 5

    def test_collect_without_submissions_rejected(self, service_graph):
        session = make_service(service_graph).session(Node2VecSpec(), CONFIG)
        with pytest.raises(ServiceError):
            session.collect()


class TestStreaming:
    def test_stream_yields_every_walk_exactly_once(self, service_graph):
        session = make_service(service_graph).session(Node2VecSpec(), CONFIG)
        queries = make_queries(service_graph.num_nodes, walk_length=5, num_queries=20)
        session.submit(queries)
        seen: list[int] = []
        for chunk in session.stream():
            assert len(chunk.query_ids) == len(chunk.paths)
            seen.extend(chunk.query_ids)
        assert sorted(seen) == [q.query_id for q in queries]
        assert len(seen) == len(set(seen))
        assert session.pending == 0

    def test_chunk_paths_match_collected_paths(self, service_graph):
        session = make_service(service_graph).session(Node2VecSpec(), CONFIG)
        queries = make_queries(service_graph.num_nodes, walk_length=5, num_queries=20)
        session.submit(queries)
        streamed: dict[int, list[int]] = {}
        for chunk in session.stream():
            for qid, path in zip(chunk.query_ids, chunk.paths, strict=False):
                streamed[qid] = list(path)
        result = session.collect()
        for query, path in zip(queries, result.paths, strict=False):
            assert streamed[query.query_id] == path

    def test_metapath_streams_early_deadend_completions(self, service_graph):
        # MetaPath walks die at schema dead ends, so chunks must arrive at
        # different supersteps (not one terminal blob).
        session = make_service(service_graph).session(MetaPathSpec(schema=(0, 1, 2)), CONFIG)
        session.submit(make_queries(service_graph.num_nodes, walk_length=3))
        supersteps = [chunk.superstep for chunk in session.stream()]
        assert len(supersteps) >= 2
        assert supersteps == sorted(supersteps)

    def test_scalar_backend_streams_per_walk(self, service_graph):
        config = dataclasses.replace(CONFIG, execution="scalar")
        session = make_service(service_graph).session(Node2VecSpec(), config)
        assert session.plan.streaming_granularity == "walk"
        queries = make_queries(service_graph.num_nodes, walk_length=4, num_queries=7)
        session.submit(queries)
        chunks = list(session.stream())
        assert len(chunks) == 7
        # Scalar streaming preserves submission order walk by walk.
        assert [c.query_ids[0] for c in chunks] == [q.query_id for q in queries]

    def test_interleaved_submit_stream_orders_by_submission(self, service_graph):
        session = make_service(service_graph).session(Node2VecSpec(), CONFIG)
        queries = make_queries(service_graph.num_nodes, walk_length=4, num_queries=12)
        first = session.submit(queries[:4])
        stream = session.stream()
        seen: list[int] = []
        for chunk in stream:
            seen.extend(chunk.query_ids)
            break
        # Mid-stream: enqueue more work, the same generator picks it up.
        second = session.submit(queries[4:])
        assert second.status == "queued"
        for chunk in stream:
            seen.extend(chunk.query_ids)
        assert sorted(seen) == [q.query_id for q in queries]
        assert first.done and second.done
        # collect() still reports every query in submission order.
        result = session.collect()
        assert [p[0] for p in result.paths] == [q.start_node for q in queries]

    def test_abandoned_stream_resumes_in_collect(self, service_graph):
        session = make_service(service_graph).session(MetaPathSpec(schema=(0, 1, 2)), CONFIG)
        session.submit(make_queries(service_graph.num_nodes, walk_length=3))
        for _ in session.stream():
            break  # abandon mid-wave
        result = session.collect()
        assert len(result.paths) == service_graph.num_nodes

    def test_chunk_accounting_sums_to_total(self, service_graph):
        session = make_service(service_graph).session(Node2VecSpec(), CONFIG)
        session.submit(make_queries(service_graph.num_nodes, walk_length=5, num_queries=16))
        # For a fixed-length workload every walk survives to the last
        # superstep, so the emitted chunks cover every executed step.
        chunk_steps = sum(c.steps for c in session.stream())
        assert chunk_steps <= session.collect().total_steps


class TestMultiTenancy:
    def test_same_workload_sessions_share_transition_cache(self, service_graph):
        service = make_service(service_graph)
        a = service.session(DeepWalkSpec(), CONFIG)
        b = service.session(DeepWalkSpec(), CONFIG)
        a.submit(make_queries(service_graph.num_nodes, walk_length=4, num_queries=6))
        a.collect()  # builds the cache through session a
        cache_a = a.engine._transition_cache()
        cache_b = b.engine._transition_cache()
        assert cache_a is not None
        assert cache_a is cache_b
        assert a.engine.caches is b.engine.caches

    def test_same_workload_sessions_share_compiled_and_profile(self, service_graph):
        service = make_service(service_graph)
        a = service.session(Node2VecSpec(a=2.0, b=0.5), CONFIG)
        b = service.session(Node2VecSpec(a=2.0, b=0.5), CONFIG)
        assert a.compiled is b.compiled
        assert a.profile is b.profile

    def test_different_hyperparameters_do_not_share(self, service_graph):
        service = make_service(service_graph)
        a = service.session(Node2VecSpec(a=2.0, b=0.5), CONFIG)
        b = service.session(Node2VecSpec(a=0.5, b=2.0), CONFIG)
        assert a.compiled is not b.compiled

    def test_array_hyperparameters_key_by_content(self):
        # repr() truncates large arrays; the cache key must not collide on
        # the truncated form, and equal-content arrays must share.
        import numpy as np

        class BiasSpec(Node2VecSpec):
            def __init__(self, bias):
                self.bias = np.asarray(bias, dtype=np.float64)
                super().__init__()

            def describe(self):
                return {**super().describe(), "bias": self.bias}

        base = np.zeros(2000)
        tweaked = base.copy()
        tweaked[1000] = 5.0
        key_a = WalkService._spec_key(BiasSpec(base))
        key_b = WalkService._spec_key(BiasSpec(tweaked))
        key_c = WalkService._spec_key(BiasSpec(base.copy()))
        assert key_a != key_b
        assert key_a == key_c

    def test_different_workloads_share_one_service(self, service_graph):
        service = make_service(service_graph)
        sessions = [
            service.session(DeepWalkSpec(), CONFIG),
            service.session(Node2VecSpec(), CONFIG),
            service.session(MetaPathSpec(schema=(0, 1, 2)), CONFIG),
        ]
        queries = make_queries(service_graph.num_nodes, walk_length=3, num_queries=10)
        for session in sessions:
            session.submit([WalkQuery(q.query_id, q.start_node, q.max_length) for q in queries])
        results = [session.collect() for session in sessions]
        assert all(len(r.paths) == 10 for r in results)
        assert service.describe()["compiled_workloads"] == 3

    def test_concurrent_sessions_interleave_without_interference(self, service_graph):
        # Drive two same-service sessions chunk by chunk, alternating; each
        # must produce exactly what a solo session produces.
        service = make_service(service_graph)
        queries = make_queries(service_graph.num_nodes, walk_length=5, num_queries=14)

        solo = service.session(DeepWalkSpec(), CONFIG)
        solo.submit(queries)
        expected = solo.collect()

        a = service.session(DeepWalkSpec(), CONFIG)
        b = service.session(DeepWalkSpec(), CONFIG)
        a.submit(queries)
        b.submit(queries)
        streams = [a.stream(), b.stream()]
        exhausted = [False, False]
        while not all(exhausted):
            for i, stream in enumerate(streams):
                if not exhausted[i]:
                    try:
                        next(stream)
                    except StopIteration:
                        exhausted[i] = True
        for session in (a, b):
            result = session.collect()
            assert result.paths == expected.paths
            assert result.counters.as_dict() == expected.counters.as_dict()
            assert result.kernel.time_ns == expected.kernel.time_ns
