"""Benchmark: Section 7.2 — INT8 property-weight extension."""

from __future__ import annotations

from bench_helpers import run_once

from repro.bench.experiments import int8_extension as experiment


def test_int8_extension(benchmark, quick_config):
    result = run_once(benchmark, experiment, quick_config)
    assert result["summary"]["geomean_int8_speedup_over_flowwalker"] > 1.0
    for row in result["rows"]:
        # Narrower weights reduce simulated memory time for both systems, and
        # FlexiWalker keeps its advantage (paper: 27.59x geomean).
        assert row["FlexiWalker_int8_ms"] < row["FlexiWalker_fp64_ms"]
        assert row["speedup_int8"] > 1.0
