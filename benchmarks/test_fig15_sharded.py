"""Benchmark: Fig. 15 companion — sharded execution with locality + ghosts."""

from __future__ import annotations

from bench_helpers import run_once

from repro.bench.config import ExperimentConfig
from repro.bench.experiments import fig15_sharded as experiment


def test_fig15_sharded(benchmark):
    # YT is the near-uniform scale model, EU the skewed one (hubs at low
    # node ids) — together they cover both regimes of the locality
    # partitioner; the full five-dataset sweep lives in the tier-2 workflow.
    config = ExperimentConfig(num_queries=96, walk_length=8, datasets=("YT", "EU"))
    result = run_once(benchmark, experiment, config)
    for row in result["rows"]:
        # Sharding must never perturb the simulated walks: paths, counters
        # and per-query base times stay bit-identical to the replicated run
        # for every policy, with and without the ghost cache.
        assert row["base_parity"] is True
        # A fleet whose devices cannot hold the whole graph negotiates the
        # sharded placement (the scenario replication cannot express).
        assert row["negotiated_plan"] == "sharded"
        for policy in ("contiguous", "degree_balanced", "locality"):
            # The walked remote ratio is a fraction of the executed steps.
            assert 0.0 <= row[f"remote_ratio_{policy}"] <= 1.0
            # The degree-ranked ghost cache absorbs at least some boundary
            # crossings whenever the walk crosses shards at all.
            if row[f"remote_ratio_{policy}"] > 0:
                assert row[f"ghost_hit_{policy}"] > 0.0
        # The locality partitioner optimises the static cut: it must not
        # leave more edges crossing shards than naive contiguous ranges.
        assert row["static_remote_locality"] <= row["static_remote_contiguous"]
