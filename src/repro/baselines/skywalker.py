"""Skywalker (Wang et al., PACT 2021): alias-method GPU sampling and walks.

Skywalker accelerates weighted sampling by building **alias tables**.  For
static walks the tables are built once; for dynamic walks (the paper's
dynamic-extended configuration) a fresh table must be constructed for every
step, in shared/global memory, which dominates its runtime and explains its
position in Fig. 3 and Table 2.
"""

from __future__ import annotations

from repro.baselines.base import BaselineSystem
from repro.gpusim.device import A6000
from repro.gpusim.memory import MemoryModel
from repro.sampling.alias import AliasSampler
from repro.sampling.base import Sampler, StepContext
from repro.walks.spec import WalkSpec


def _sampler(spec: WalkSpec) -> AliasSampler:
    return AliasSampler()


def _alias_buffer_overhead(ctx: StepContext, sampler: Sampler) -> None:
    """Spilling the per-step alias table to global memory when it exceeds shared memory."""
    if ctx.degree > 1024:
        ctx.counters.coalesced_accesses += ctx.degree


def make_skywalker() -> BaselineSystem:
    """Build the Skywalker baseline model (dynamic-extended alias sampling)."""
    return BaselineSystem(
        name="Skywalker",
        platform="gpu",
        device=A6000,
        sampler_factory=_sampler,
        description="Alias-method GPU sampling; per-step alias-table reconstruction",
        memory_model=MemoryModel(graph_overhead=1.0, per_query_bytes=160, auxiliary_per_edge_bytes=10.0),
        step_overhead=_alias_buffer_overhead,
        scheduling="dynamic",
    )
