"""Baseline rejection sampling (RJS), the strategy of NextDoor.

Each trial draws a 2-D coordinate ``(x, y)``: ``x`` picks a candidate
neighbour uniformly and the candidate is accepted when ``y`` — drawn from
``[0, max w̃]`` — falls under its transition weight (Fig. 2d).  The baseline
pays for a **max reduction over every transition weight** before it can start
drawing, which for dynamic walks means computing every weight anyway; this is
exactly the cost eRJS removes.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.base import Sampler, StepContext, gather_transition_weights

#: Size of the vectorised trial batches drawn at once (purely an
#: implementation detail; the trial count recorded in the counters is exact).
_TRIAL_BATCH = 16


def run_rejection_trials(
    ctx: StepContext,
    weights: np.ndarray,
    bound: float,
    max_trials: int,
) -> tuple[int | None, int]:
    """Run accept/reject trials against ``weights`` with proposal bound ``bound``.

    Returns ``(accepted index or None, number of trials performed)``.  The
    per-trial cost — two random numbers, one uncoalesced weight access, one
    dynamic-weight evaluation plus whatever side data that evaluation touches
    (``spec.probe_cost_words``, e.g. the dist(v', u) membership probe of
    second-order workloads) — is accounted here so both the baseline kernel
    and eRJS share the exact same trial pricing.
    """
    degree = int(weights.size)
    if degree == 0 or bound <= 0.0:
        return None, 0
    probe_words = 1 + ctx.spec.probe_cost_words(ctx.graph, ctx.state)
    trials_done = 0
    while trials_done < max_trials:
        batch = min(_TRIAL_BATCH, max_trials - trials_done)
        xs = ctx.rng.integers(0, degree, size=batch)
        ys = np.asarray(ctx.rng.uniform(batch)) * bound
        accepted = np.nonzero(ys <= weights[xs])[0]
        if accepted.size:
            used = int(accepted[0]) + 1
            trials_done += used
            ctx.counters.rng_draws += 2 * used
            ctx.counters.random_accesses += probe_words * used
            ctx.counters.weight_computations += used
            ctx.counters.rejection_trials += used
            return int(xs[accepted[0]]), trials_done
        trials_done += batch
        ctx.counters.rng_draws += 2 * batch
        ctx.counters.random_accesses += probe_words * batch
        ctx.counters.weight_computations += batch
        ctx.counters.rejection_trials += batch
    return None, trials_done


class RejectionSampler(Sampler):
    """Max-reduce + accept/reject trials (NextDoor's strategy, Fig. 2d)."""

    name = "RJS"
    processing_unit = "thread"

    def __init__(self, max_trial_factor: int = 16, min_trials: int = 64) -> None:
        self.max_trial_factor = int(max_trial_factor)
        self.min_trials = int(min_trials)

    def sample(self, ctx: StepContext) -> int | None:
        if not self._check_nonempty(ctx):
            return None
        # The baseline must compute every transition weight to find the max.
        # Rejection-sampling kernels are thread-per-walker (Section 5.2), so
        # this scan is a serial, uncoalesced sweep — the "heavy weight max
        # reduction" the paper blames for NextDoor's weighted-workload
        # collapse and that eRJS's bound estimation removes.
        weights = gather_transition_weights(ctx, coalesced=False)
        degree = weights.size
        warp = ctx.warp()
        bound = warp.reduce_max(weights)
        if bound <= 0.0:
            return None

        max_trials = max(self.min_trials, self.max_trial_factor * degree)
        choice, _ = run_rejection_trials(ctx, weights, bound, max_trials)
        if choice is None:
            # Extremely unlucky trial budget exhaustion: finish the step with
            # a direct inversion over the already-computed weights so the
            # walk still advances from the correct distribution.
            total = float(weights.sum())
            if total <= 0.0:
                return None
            cdf = warp.prefix_sum(weights)
            u = ctx.rng.uniform()
            ctx.counters.rng_draws += 1
            choice = min(int(np.searchsorted(cdf, u * total)), degree - 1)
        return int(ctx.neighbors()[choice])
