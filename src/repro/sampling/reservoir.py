"""Baseline reservoir sampling (RVS), the strategy of FlowWalker.

Sequential weighted reservoir sampling visits neighbours in order and
replaces the current candidate ``c`` by neighbour ``i`` with probability
``w̃_i / Σ_{k<=i} w̃_k``.  FlowWalker parallelises this by precomputing the
prefix sums ``W_i`` so every comparison becomes independent, then a max
reduction over the surviving indices yields the final candidate (Fig. 2e).

The costs this kernel pays — and which eRVS removes — are:

* a full prefix sum over the transition weights (an extra pass over the
  weight list and inter-thread communication), and
* **one random number per neighbour**.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.base import Sampler, StepContext, gather_transition_weights


def parallel_reservoir_choice(weights: np.ndarray, uniforms: np.ndarray, prefix: np.ndarray) -> int | None:
    """FlowWalker's parallel formulation of sequential reservoir sampling.

    Neighbour ``i`` *would replace* the running candidate iff
    ``u_i * W_i < w̃_i``; because replacements are ordered, the final
    candidate is simply the largest such ``i``.  Returns ``None`` when no
    neighbour qualifies (only possible if every weight is zero).
    """
    qualified = np.nonzero(uniforms * prefix < weights)[0]
    if qualified.size == 0:
        return None
    return int(qualified[-1])


class ReservoirSampler(Sampler):
    """Prefix-sum weighted reservoir sampling (FlowWalker's kernel, Fig. 2e)."""

    name = "RVS"
    processing_unit = "warp"

    def sample(self, ctx: StepContext) -> int | None:
        if not self._check_nonempty(ctx):
            return None
        # The baseline reads the weight list twice: once to build the prefix
        # sums and once while evaluating the replacement conditions.
        weights = gather_transition_weights(ctx, passes=2)
        degree = weights.size
        if float(weights.sum()) <= 0.0:
            return None

        warp = ctx.warp()
        prefix = warp.prefix_sum(weights)

        # One uniform per neighbour — the RNG cost eRVS's jump removes.
        uniforms = np.asarray(ctx.rng.uniform(degree))
        ctx.counters.rng_draws += degree

        choice = parallel_reservoir_choice(weights, uniforms, prefix)
        # Selecting the surviving candidate across lanes is a max reduction.
        warp.reduce_max(np.arange(min(degree, ctx.warp_width), dtype=np.float64))
        if choice is None:
            return None
        return int(ctx.neighbors()[choice])
