"""Setuptools shim.

The environment this reproduction targets has an older setuptools without the
``wheel`` package, so PEP 660 editable installs (which need ``bdist_wheel``)
fail.  Keeping a ``setup.py`` lets ``pip install -e .`` fall back to the
legacy ``setup.py develop`` path, which works offline.  All project metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
