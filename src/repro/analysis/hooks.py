"""Hook-source extraction for the whole-spec verifier.

:mod:`repro.compiler.analyzer` parses exactly one method — ``get_weight``.
The verifier generalises that to *every* user-overridable hook of a
:class:`~repro.walks.spec.WalkSpec`: the scalar/vector/batch weight paths,
the update hooks, the cost hooks and ``describe``.  This module locates
which hooks a spec actually overrides, reads their source (degrading to a
diagnostic, never an exception, when :func:`inspect.getsource` fails —
e.g. REPL-defined specs), and parses each into an AST annotated with
absolute file/line positions so diagnostics carry real source spans.

It also performs **one-level helper expansion**: a hook that calls
``self._helper(...)`` pulls ``_helper``'s source into the analysis under
the same hook context, so rules see through the common
"hook delegates to a private method" idiom (e.g. MetaPath's
``_expected_label``).
"""

from __future__ import annotations

import ast
import inspect
import linecache
import textwrap
from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic, Severity, SourceSpan
from repro.walks.spec import WalkSpec

#: Behavioural hooks a user spec may override, in analysis order.  ``init``
#: runs once at construction and ``walk_length`` only resolves an integer,
#: so neither participates in the per-step purity rules.
BEHAVIOR_HOOKS: tuple[str, ...] = (
    "get_weight",
    "transition_weights",
    "transition_weights_batch",
    "static_transition_weights",
    "update",
    "update_batch",
    "probe_cost_words",
    "scan_cost_words",
    "probe_cost_words_batch",
    "scan_cost_words_batch",
)

#: Hooks on the transition-weight path; any state dependence here decides
#: :class:`~repro.sampling.transition_cache.TransitionCache` eligibility.
WEIGHT_HOOKS: tuple[str, ...] = (
    "get_weight",
    "transition_weights",
    "transition_weights_batch",
    "static_transition_weights",
)

#: Hooks that are *expected* to mutate walker state; exempt from the
#: pure-hook-writes-self rule.
MUTATING_HOOKS: tuple[str, ...] = ("update", "update_batch")


@dataclass
class HookSource:
    """Parsed source of one hook (or one-level helper) of a spec.

    ``line_offset`` converts snippet-relative AST line numbers to absolute
    file lines: ``absolute = node.lineno + line_offset``.
    """

    name: str
    func: ast.FunctionDef
    file: str
    line_offset: int
    arg_names: tuple[str, ...]
    #: Name of the hook this source was expanded from; equals ``name`` for
    #: the hook itself, differs for ``self._helper`` expansions.
    context: str = ""

    def __post_init__(self) -> None:
        if not self.context:
            self.context = self.name

    def span(self, node: ast.AST) -> SourceSpan:
        """Absolute source span of one AST node inside this hook."""
        line = getattr(node, "lineno", 1) + self.line_offset
        end_line = getattr(node, "end_lineno", None)
        return SourceSpan(
            file=self.file,
            line=line,
            end_line=(end_line + self.line_offset) if end_line else line,
            col=getattr(node, "col_offset", 0),
            end_col=getattr(node, "end_col_offset", 0) or 0,
        )


@dataclass
class SpecSources:
    """Every analysable hook source of one spec, plus load failures."""

    spec_class: str
    hooks: list[HookSource] = field(default_factory=list)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Hooks whose source could not be read (analysis must be conservative
    #: about anything these could have done).
    unreadable: list[str] = field(default_factory=list)

    def hook(self, name: str) -> HookSource | None:
        for source in self.hooks:
            if source.name == name and source.context == name:
                return source
        return None

    def in_context(self, context: str) -> list[HookSource]:
        """The hook plus its expanded helpers, for one hook context."""
        return [source for source in self.hooks if source.context == context]


def hook_overridden(spec: WalkSpec, name: str) -> bool:
    """True when ``type(spec)`` overrides the base-class hook ``name``."""
    return getattr(type(spec), name, None) is not getattr(WalkSpec, name, None)


def get_source_line(file: str, lineno: int) -> str:
    """Raw source line for suppression matching ('' when unavailable)."""
    if lineno <= 0:
        return ""
    return linecache.getline(file, lineno)


def _load_function(fn, name: str) -> HookSource | None:
    """Parse one bound/unbound function into a :class:`HookSource`."""
    try:
        unwrapped = inspect.unwrap(fn)
        lines, start = inspect.getsourcelines(unwrapped)
        file = inspect.getsourcefile(unwrapped) or "<unknown>"
    except (OSError, TypeError, ValueError):
        return None
    source = textwrap.dedent("".join(lines))
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return None
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            func = node
            break
    else:
        return None
    # The snippet's first line is absolute line ``start``; a decorator may
    # push the ``def`` further down, which node.lineno already accounts for.
    offset = start - 1
    args = tuple(arg.arg for arg in func.args.args)
    return HookSource(name=name, func=func, file=file, line_offset=offset, arg_names=args)


def _self_helper_calls(source: HookSource) -> set[str]:
    """Names of ``self._helper(...)`` / ``self.helper(...)`` calls."""
    self_name = source.arg_names[0] if source.arg_names else "self"
    helpers: set[str] = set()
    for node in ast.walk(source.func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == self_name
        ):
            helpers.add(node.func.attr)
    return helpers


def load_spec_sources(spec: WalkSpec) -> SpecSources:
    """Load the source of every overridden behaviour hook of ``spec``.

    Never raises: a hook whose source cannot be read is recorded in
    ``unreadable`` with a WARNING diagnostic (rule ``spec/source-unavailable``)
    and the rule families treat it conservatively.
    """
    sources = SpecSources(spec_class=type(spec).__qualname__)
    base_names = set(BEHAVIOR_HOOKS)
    for name in BEHAVIOR_HOOKS:
        if not hook_overridden(spec, name):
            continue
        fn = getattr(type(spec), name)
        loaded = _load_function(fn, name)
        if loaded is None:
            sources.unreadable.append(name)
            sources.diagnostics.append(
                Diagnostic(
                    rule="spec/source-unavailable",
                    severity=Severity.WARNING,
                    message=(
                        f"cannot read the source of {type(spec).__qualname__}.{name}; "
                        "analysis falls back to conservative assumptions"
                    ),
                    hook=name,
                    fix_hint="define the spec in an importable module, not a REPL or exec string",
                )
            )
            continue
        sources.hooks.append(loaded)
        # One-level helper expansion: self.<method>() bodies join the
        # analysis under the calling hook's context.
        for helper in sorted(_self_helper_calls(loaded)):
            if helper in base_names:
                continue
            helper_fn = getattr(type(spec), helper, None)
            if helper_fn is None or not callable(helper_fn):
                continue
            expanded = _load_function(helper_fn, helper)
            if expanded is None:
                sources.unreadable.append(f"{name}.{helper}")
                continue
            expanded.context = name
            sources.hooks.append(expanded)
    return sources


def load_describe(spec: WalkSpec) -> list[HookSource]:
    """Every ``describe`` implementation in the MRO below :class:`WalkSpec`.

    The registry-key rule needs all of them: a subclass's ``describe`` that
    calls ``super().describe()`` keys whatever the parents key.
    """
    loaded: list[HookSource] = []
    seen: set[object] = set()
    for klass in type(spec).__mro__:
        if klass is WalkSpec or not issubclass(klass, WalkSpec):
            continue
        fn = klass.__dict__.get("describe")
        if fn is None or fn in seen:
            continue
        seen.add(fn)
        source = _load_function(fn, "describe")
        if source is not None:
            loaded.append(source)
    return loaded
