"""Tests for the dynamic query queue."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.gpusim.counters import CostCounters
from repro.runtime.scheduler import DynamicQueryQueue, validate_queries
from repro.walks.state import WalkQuery


def make_batch(n):
    return [WalkQuery(query_id=i, start_node=i, max_length=3) for i in range(n)]


class TestDynamicQueryQueue:
    def test_fetch_returns_queries_in_order(self):
        queue = DynamicQueryQueue(make_batch(3))
        assert [queue.fetch().query_id for _ in range(3)] == [0, 1, 2]

    def test_exhausted_queue_returns_none(self):
        queue = DynamicQueryQueue(make_batch(1))
        queue.fetch()
        assert queue.fetch() is None
        assert queue.exhausted

    def test_each_fetch_costs_one_atomic(self):
        queue = DynamicQueryQueue(make_batch(2))
        counters = CostCounters()
        queue.fetch(counters)
        queue.fetch(counters)
        queue.fetch(counters)  # failed fetch still pays the atomic
        assert counters.atomic_ops == 3
        assert queue.atomic_ops == 3

    def test_remaining_and_len(self):
        queue = DynamicQueryQueue(make_batch(4))
        assert len(queue) == 4
        queue.fetch()
        assert queue.remaining == 3

    def test_reset_rewinds(self):
        queue = DynamicQueryQueue(make_batch(2))
        queue.drain()
        queue.reset()
        assert queue.remaining == 2
        assert queue.atomic_ops == 0

    def test_drain_returns_all_remaining(self):
        queue = DynamicQueryQueue(make_batch(5))
        queue.fetch()
        assert [q.query_id for q in queue.drain()] == [1, 2, 3, 4]


class TestValidateQueries:
    def test_valid_batch_passes(self):
        validate_queries(make_batch(3), num_nodes=10)

    def test_out_of_range_start_rejected(self):
        with pytest.raises(SimulationError):
            validate_queries([WalkQuery(0, 99, 5)], num_nodes=10)
