"""Synthetic scale-models of the paper's evaluation datasets (Table 1).

The paper evaluates on ten real graphs: five from SNAP (YT, CP, LJ, OK, FS)
and five web crawls from LAW (EU, AB, UK, TW, SK), ranging from 6 M to 3.6 B
edges.  Shipping or downloading those graphs is impossible here, so each
dataset name maps to a *scale model*: a synthetic graph whose generator and
skew parameters mimic the original's family (social network vs. web crawl),
scaled to run in seconds.  The relative ordering between datasets — average
degree, degree skew, size — is preserved, which is what the sampling-strategy
trade-offs in the paper depend on.

``load_dataset(name)`` returns a fully initialised :class:`CSRGraph` with
property weights and edge labels attached according to the requested weight
scheme.  Results are cached per configuration because the benchmarks reuse
the same graph across many experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.generators import barabasi_albert_graph, rmat_graph
from repro.graph.labels import random_edge_labels
from repro.graph.weights import (
    constant_weights,
    degree_based_weights,
    powerlaw_weights,
    uniform_weights,
)


@dataclass(frozen=True)
class DatasetSpec:
    """Configuration of one synthetic dataset scale-model.

    Attributes
    ----------
    name:
        Short tag used throughout the paper (``"YT"``, ``"EU"``, ...).
    full_name:
        The real-world graph the scale model stands in for.
    kind:
        ``"social"`` (Barabási–Albert generator) or ``"web"`` (RMAT).
    num_nodes / num_edges:
        Target size of the scale model (the RMAT edge count is approximate
        because duplicates and self loops are removed).
    paper_nodes / paper_edges:
        Size of the original graph, kept for documentation and for the OOM
        model (frameworks whose memory footprint scales super-linearly hit
        simulated OOM on the large graphs, as in the paper).
    """

    name: str
    full_name: str
    kind: str
    num_nodes: int
    num_edges: int
    paper_nodes: int
    paper_edges: int
    seed: int

    @property
    def avg_degree(self) -> float:
        return self.num_edges / max(self.num_nodes, 1)


def _spec(name, full_name, kind, nodes, edges, paper_nodes, paper_edges, seed) -> DatasetSpec:
    return DatasetSpec(name, full_name, kind, nodes, edges, paper_nodes, paper_edges, seed)


#: Registry of scale models, ordered exactly as Table 1 of the paper.
DATASETS: dict[str, DatasetSpec] = {
    "YT": _spec("YT", "com-youtube", "social", 1100, 6_000, 1_100_000, 6_000_000, 11),
    "CP": _spec("CP", "cit-patents", "social", 1900, 16_000, 3_800_000, 33_000_000, 12),
    "LJ": _spec("LJ", "LiveJournal", "social", 2400, 43_000, 4_800_000, 86_000_000, 13),
    "OK": _spec("OK", "Orkut", "social", 1550, 117_000, 3_100_000, 234_000_000, 14),
    "EU": _spec("EU", "EU-2015", "web", 2750, 130_000, 11_000_000, 522_000_000, 15),
    "AB": _spec("AB", "Arabic-2005", "web", 3300, 157_000, 23_000_000, 1_100_000_000, 16),
    "UK": _spec("UK", "UK-2005", "web", 3900, 160_000, 39_000_000, 1_600_000_000, 17),
    "TW": _spec("TW", "Twitter", "social", 4200, 240_000, 42_000_000, 2_400_000_000, 18),
    "SK": _spec("SK", "SK-2005", "web", 5100, 360_000, 51_000_000, 3_600_000_000, 19),
    "FS": _spec("FS", "Friendster", "social", 6600, 360_000, 66_000_000, 3_600_000_000, 20),
}

#: Weight schemes accepted by :func:`load_dataset`.
WEIGHT_SCHEMES = ("unweighted", "uniform", "powerlaw", "degree")


def dataset_names() -> list[str]:
    """Dataset tags in Table 1 order."""
    return list(DATASETS.keys())


@lru_cache(maxsize=None)
def _base_topology(name: str) -> CSRGraph:
    """Generate (and cache) the unweighted topology of a scale model."""
    spec = DATASETS[name]
    if spec.kind == "social":
        edges_per_node = max(1, round(spec.num_edges / (2 * spec.num_nodes)))
        graph = barabasi_albert_graph(
            spec.num_nodes, edges_per_node, seed=spec.seed, name=spec.name
        )
    else:
        graph = rmat_graph(
            spec.num_nodes, spec.num_edges, seed=spec.seed, name=spec.name
        )
    return graph


@lru_cache(maxsize=None)
def load_dataset(
    name: str,
    weights: str = "uniform",
    alpha: float = 2.0,
    with_labels: bool = True,
    num_labels: int = 5,
    seed: int = 0,
) -> CSRGraph:
    """Load a dataset scale-model with the requested weight initialisation.

    Parameters
    ----------
    name:
        One of the Table 1 tags (``"YT"`` ... ``"FS"``), case-insensitive.
    weights:
        ``"unweighted"`` (h = 1), ``"uniform"`` (reals in [1, 5)),
        ``"powerlaw"`` (Pareto with shape ``alpha``) or ``"degree"``
        (destination-degree based) — the four schemes of Section 6.2.
    alpha:
        Pareto shape for the power-law scheme (1.0 = most skewed).
    with_labels:
        Attach random edge labels in ``[0, num_labels)`` for MetaPath.
    """
    key = name.upper()
    if key not in DATASETS:
        raise GraphError(f"unknown dataset {name!r}; known: {', '.join(DATASETS)}")
    if weights not in WEIGHT_SCHEMES:
        raise GraphError(f"unknown weight scheme {weights!r}; known: {WEIGHT_SCHEMES}")

    graph = _base_topology(key)
    if weights == "unweighted":
        w = constant_weights(graph)
    elif weights == "uniform":
        w = uniform_weights(graph, seed=DATASETS[key].seed + seed)
    elif weights == "powerlaw":
        w = powerlaw_weights(graph, alpha=alpha, seed=DATASETS[key].seed + seed)
    else:
        w = degree_based_weights(graph)
    graph = graph.with_weights(w)
    if with_labels:
        graph = graph.with_labels(random_edge_labels(graph, num_labels=num_labels, seed=DATASETS[key].seed))
    return graph


def scale_factor(name: str) -> float:
    """Edge-count ratio between the real graph and its scale model.

    The GPU simulator uses this to extrapolate simulated memory footprints so
    the OOM behaviour of baselines on the billion-edge graphs (Table 2,
    Fig. 10) can be reproduced without materialising them.
    """
    spec = DATASETS[name.upper()]
    model_edges = _base_topology(name.upper()).num_edges
    return spec.paper_edges / max(model_edges, 1)
