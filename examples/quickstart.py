"""Quickstart: run weighted Node2Vec with FlexiWalker on a scale-model graph.

The five-line version:

    from repro import FlexiWalker, Node2VecSpec, load_dataset
    graph = load_dataset("YT", weights="uniform")
    result = FlexiWalker(graph, Node2VecSpec()).run(walk_length=20)
    print(result.time_ms)

This script does the same thing with commentary: it loads the com-youtube
scale model, builds the full FlexiWalker pipeline (compile → profile →
adaptive runtime → optimised kernels on the simulated A6000), runs one walk
query per node and prints the simulated execution profile, including which
kernel the runtime chose how often.
"""

from __future__ import annotations

from repro import FlexiWalker, FlexiWalkerConfig, Node2VecSpec, load_dataset, summarize_run
from repro.gpusim import A6000


def main() -> None:
    # 1. A graph.  The registry ships synthetic scale models of the paper's
    #    ten datasets; "uniform" gives property weights in [1, 5).
    graph = load_dataset("YT", weights="uniform")
    print(f"graph: {graph}")

    # 2. A workload.  Node2Vec with the paper's hyperparameters (a=2, b=0.5).
    spec = Node2VecSpec(a=2.0, b=0.5)

    # 3. The framework.  The default configuration reproduces the paper's
    #    setup: cost-model selection, start-up profiling, overheads accounted.
    walker = FlexiWalker(graph, spec, FlexiWalkerConfig())
    print("pipeline:", walker.describe())

    # 4. Walk.  One query per node, 20 steps each (the paper uses 80; 20 keeps
    #    the example instant).
    result = walker.run(walk_length=20)

    # 5. Results: the walks themselves plus the simulated execution profile.
    #    The engine runs in the batched (frontier) execution mode by default;
    #    pass FlexiWalkerConfig(execution="scalar") to use the reference
    #    interpreter instead — the walks and simulated profile are identical,
    #    only the host-side throughput changes.
    print(f"first walk: {result.paths[0]}")
    print(f"simulated kernel time: {result.time_ms:.4f} ms "
          f"(+{result.overhead_ms:.4f} ms profiling/preprocessing)")
    print(f"kernel selection ratio: {result.selection_ratio()}")
    print(f"host throughput: {result.throughput_steps_per_s:,.0f} simulated steps/s "
          f"({result.wall_clock_s * 1e3:.1f} ms wall clock)")
    print("full summary:")
    for key, value in summarize_run(result).items():
        print(f"  {key}: {value}")

    # 6. Scale out.  num_devices partitions the queries over replicated-graph
    #    devices (Fig. 15) and runs one frontier engine per device; walker
    #    randomness is keyed by query id, so the walks are identical to the
    #    single-device run and only the makespan shrinks.  A full A6000 has
    #    more lanes than this example has queries, so we shrink the device to
    #    oversubscribe it the way the paper-scale batches do.
    device = A6000.scaled(96 / A6000.parallel_lanes, name="A6000 (scaled)")
    single = FlexiWalker(graph, spec, FlexiWalkerConfig(device=device))
    single_result = single.run(walk_length=20)
    multi = FlexiWalker(
        graph, spec,
        FlexiWalkerConfig(device=device, num_devices=4, partition_policy="hash"),
    )
    multi_result = multi.run(walk_length=20)
    assert multi_result.paths == single_result.paths  # placement parity
    print(f"4-device makespan: {multi_result.time_ms:.4f} ms "
          f"(1 device: {single_result.time_ms:.4f} ms, "
          f"speedup: {single_result.time_ms / multi_result.time_ms:.2f}x, "
          f"device load imbalance: {multi_result.load_imbalance:.2f})")
    print(f"per-device kernel times (ms): "
          f"{[round(k.time_ms, 4) for k in multi_result.device_kernels]}")


if __name__ == "__main__":
    main()
