"""Result summarisation helpers for walk runs."""

from __future__ import annotations

import numpy as np

from repro.runtime.engine import WalkRunResult


def summarize_run(result: WalkRunResult) -> dict[str, object]:
    """Condense a walk run into the quantities reported in the paper's tables.

    Returns a plain dictionary (easy to print, compare or serialise) with the
    simulated execution time, the profiling/preprocessing overhead, walk
    statistics and the kernel-selection ratio.
    """
    lengths = np.array([len(path) - 1 for path in result.paths], dtype=np.int64)
    return {
        "num_queries": len(result.paths),
        "total_steps": result.total_steps,
        "avg_walk_length": float(lengths.mean()) if lengths.size else 0.0,
        "min_walk_length": int(lengths.min()) if lengths.size else 0,
        "max_walk_length": int(lengths.max()) if lengths.size else 0,
        "time_ms": result.time_ms,
        "overhead_ms": result.overhead_ms,
        "total_time_ms": result.total_time_ms,
        "utilization": result.kernel.utilization,
        "load_imbalance": result.kernel.load_imbalance,
        "num_devices": result.num_devices,
        "device_load_imbalance": result.load_imbalance,
        "selection_ratio": result.selection_ratio(),
        "memory_accesses": result.counters.total_memory_accesses,
        "rng_draws": result.counters.rng_draws,
        "rejection_trials": result.counters.rejection_trials,
        "wall_clock_s": result.wall_clock_s,
        "throughput_steps_per_s": result.throughput_steps_per_s,
    }
