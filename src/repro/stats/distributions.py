"""Distribution checks and the runtime weight-variation metric of Fig. 7b.

Two kinds of statistics live here:

* **Sampling correctness** — a chi-square goodness-of-fit test that the test
  suite uses to verify every kernel draws from the exact target transition
  distribution, plus a helper that estimates the empirical distribution by
  repeatedly sampling one step.
* **Runtime weight variation** — the coefficient-of-variation histogram of
  per-node transition-weight sums across steps, which is the evidence the
  paper uses (Fig. 7b) that the optimal kernel changes during a walk.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.errors import SamplingError
from repro.gpusim.counters import CostCounters
from repro.graph.csr import CSRGraph
from repro.rng.streams import CountingStream
from repro.sampling.base import Sampler, StepContext
from repro.walks.spec import WalkSpec
from repro.walks.state import WalkerState, WalkQuery


def chi_square_statistic(observed: np.ndarray, expected: np.ndarray) -> float:
    """Pearson chi-square statistic, ignoring zero-expectation bins."""
    observed = np.asarray(observed, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    if observed.shape != expected.shape:
        raise SamplingError("observed and expected must have the same shape")
    mask = expected > 0
    diff = observed[mask] - expected[mask]
    return float(np.sum(diff * diff / expected[mask]))


def chi_square_matches(
    counts: np.ndarray,
    probabilities: np.ndarray,
    significance_factor: float = 4.0,
) -> bool:
    """Loose goodness-of-fit check used by the property tests.

    Accepts when the chi-square statistic is below ``significance_factor``
    times the degrees of freedom — far outside any plausible false-negative
    region for correct kernels, while still catching systematically wrong
    distributions (e.g. a missing weight term) immediately.
    """
    counts = np.asarray(counts, dtype=np.float64)
    probabilities = np.asarray(probabilities, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        raise SamplingError("no samples to test")
    expected = probabilities / probabilities.sum() * total
    dof = max(1, int(np.count_nonzero(probabilities > 0)) - 1)
    return chi_square_statistic(counts, expected) <= significance_factor * dof


def empirical_transition_distribution(
    graph: CSRGraph,
    spec: WalkSpec,
    sampler: Sampler,
    state: WalkerState,
    num_samples: int = 4000,
    seed: int = 0,
    bound_hint: float | None = None,
    sum_hint: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample one step repeatedly; return (empirical counts, target probabilities).

    Both arrays are parallel to ``graph.neighbors(state.current_node)``.
    """
    stream = CountingStream.from_seed(seed)
    neighbors = graph.neighbors(state.current_node)
    counts = Counter()
    for _ in range(num_samples):
        ctx = StepContext(
            graph=graph,
            state=state,
            spec=spec,
            rng=stream,
            counters=CostCounters(),
            bound_hint=bound_hint,
            sum_hint=sum_hint,
        )
        chosen = sampler.sample(ctx)
        if chosen is not None:
            counts[int(chosen)] += 1
    weights = spec.transition_weights(graph, state)
    total = weights.sum()
    probabilities = weights / total if total > 0 else np.zeros_like(weights)
    observed = np.array([counts[int(n)] for n in neighbors], dtype=np.float64)
    return observed, probabilities


def coefficient_of_variation(values: np.ndarray) -> float:
    """``std / mean * 100`` (the paper's CV definition); 0 for constant input."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return 0.0
    mean = values.mean()
    if mean == 0:
        return 0.0
    return float(values.std() / mean * 100.0)


def weight_sum_cv_histogram(
    graph: CSRGraph,
    spec: WalkSpec,
    num_nodes: int = 200,
    steps_per_node: int = 16,
    bins: tuple[float, ...] = (5, 10, 20, 40, 80, 160, 320, 640),
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Reproduce the Fig. 7b analysis: CV of per-node weight sums across steps.

    For each sampled node, the transition-weight *sum* is evaluated under
    several different walker histories (random previous nodes), the CV of
    those sums is computed, and the CVs across nodes are binned into the
    histogram the figure plots.  Returns ``(bin_upper_bounds, counts)``.
    """
    rng = np.random.default_rng(seed)
    degrees = graph.degrees()
    candidates = np.nonzero(degrees > 0)[0]
    if candidates.size == 0:
        return np.asarray(bins, dtype=np.float64), np.zeros(len(bins) + 1, dtype=np.int64)
    chosen = rng.choice(candidates, size=min(num_nodes, candidates.size), replace=False)

    cvs = []
    for node in chosen:
        sums = []
        in_neighbors = graph.neighbors(int(node))
        for step in range(steps_per_node):
            query = WalkQuery(query_id=int(node), start_node=int(node), max_length=2)
            state = WalkerState.start(query)
            if step > 0 and in_neighbors.size:
                # Emulate a walker arriving from a random predecessor.
                prev = int(rng.choice(in_neighbors))
                state.prev_node = prev
                state.step = 1 + int(rng.integers(0, 5))
            weights = spec.transition_weights(graph, state)
            sums.append(float(weights.sum()))
        cvs.append(coefficient_of_variation(np.asarray(sums)))

    edges = np.asarray(bins, dtype=np.float64)
    counts = np.zeros(edges.size + 1, dtype=np.int64)
    for cv in cvs:
        counts[int(np.searchsorted(edges, cv, side="left"))] += 1
    return edges, counts
