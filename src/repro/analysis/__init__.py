"""Whole-spec static analysis for FlexiWalker workloads.

Generalises the compiler's ``get_weight``-only analyser to every
user-overridable :class:`~repro.walks.spec.WalkSpec` hook, producing
structured :class:`Diagnostic` reports across three rule families —
determinism, cache-safety and registry-key soundness — plus an internal
invariant linter for the repository itself (:mod:`repro.analysis.codebase`).

Entry points:

* :func:`verify_spec` — verify one spec instance, returns a
  :class:`SpecReport` (never raises).
* :func:`verify_callable` — determinism checks for bare callables
  (walker selectors, hint functions).
* :func:`lint_paths` / :func:`lint_file` — the internal invariant linter.
"""

from repro.analysis.codebase import lint_file, lint_paths, lint_source
from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    SourceSpan,
    SpecReport,
)
from repro.analysis.verify import verify_callable, verify_spec

__all__ = [
    "Diagnostic",
    "Severity",
    "SourceSpan",
    "SpecReport",
    "lint_file",
    "lint_paths",
    "lint_source",
    "verify_callable",
    "verify_spec",
]
