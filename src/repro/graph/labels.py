"""Edge labels for label-constrained walks (MetaPath).

MetaPath2Vec walks a heterogeneous graph following a schema of edge labels.
The paper (Section 6.1) assigns random integer labels in ``[0, 4]`` to graphs
that lack intrinsic labels; :func:`random_edge_labels` reproduces that setup.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph


def random_edge_labels(graph: CSRGraph, num_labels: int = 5, seed: int = 0) -> np.ndarray:
    """Uniform random integer labels in ``[0, num_labels)`` for every edge."""
    if num_labels < 1:
        raise GraphError("num_labels must be at least 1")
    rng = np.random.default_rng(seed)
    return rng.integers(0, num_labels, size=graph.num_edges).astype(np.int64)


def schema_reachable_fraction(graph: CSRGraph, schema: tuple[int, ...]) -> float:
    """Fraction of nodes from which the first schema label is followable.

    A quick sanity metric used by tests and examples: MetaPath walks starting
    at nodes with no matching out-edge terminate immediately, so very low
    values indicate a schema/label mismatch.
    """
    if graph.labels is None:
        raise GraphError("graph has no edge labels")
    if not schema:
        raise GraphError("schema must be non-empty")
    first = schema[0]
    matching_edges = graph.labels == first
    # A node can start a schema walk if at least one of its out-edges matches.
    src = np.repeat(np.arange(graph.num_nodes, dtype=np.int64), graph.degrees())
    nodes_with_match = np.unique(src[matching_edges])
    return float(nodes_with_match.size) / float(max(graph.num_nodes, 1))
