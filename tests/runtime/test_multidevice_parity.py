"""Placement parity: multi-device execution cannot change any walk.

The multi-device engine partitions queries over replicated devices, but every
walker owns a counter-based random stream keyed by its query id, so where a
query runs must never change which walk it produces, what its steps cost, or
what the counters record.  These tests enforce bit-identical per-query paths,
per-query simulated times and counter totals for ``num_devices`` in {1, 2, 4}
under every partition policy, in both execution modes, plus the makespan /
load-imbalance semantics that *are* allowed to vary with placement.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.compiler.generator import compile_workload
from repro.core.config import FlexiWalkerConfig
from repro.core.flexiwalker import FlexiWalker
from repro.gpusim.device import A6000
from repro.gpusim.multigpu import PARTITION_POLICIES, MultiGPUExecutor
from repro.graph.generators import barabasi_albert_graph
from repro.graph.weights import uniform_weights
from repro.runtime.engine import WalkEngine
from repro.runtime.selector import CostModelSelector
from repro.walks.deepwalk import DeepWalkSpec
from repro.walks.node2vec import Node2VecSpec
from repro.walks.state import make_queries

DEVICE = dataclasses.replace(A6000, parallel_lanes=8)
DEVICE_COUNTS = (1, 2, 4)


def weighted_graph(num_nodes: int = 60, seed: int = 3):
    graph = barabasi_albert_graph(num_nodes, 3, seed=seed, name=f"multidev-{seed}")
    return graph.with_weights(uniform_weights(graph, seed=seed))


def make_engine(graph, spec, num_devices, policy, execution="batched", seed=0):
    compiled = compile_workload(spec, graph)
    return WalkEngine(
        graph=graph,
        spec=spec,
        device=DEVICE,
        selector=CostModelSelector(),
        compiled=compiled,
        seed=seed,
        selection_overhead=True,
        warp_switch_overhead=True,
        execution=execution,
        num_devices=num_devices,
        partition_policy=policy,
    )


def assert_placement_parity(baseline, result):
    """Everything placement-invariant must match the single-device run."""
    assert result.paths == baseline.paths
    assert result.sampler_usage == baseline.sampler_usage
    assert result.total_steps == baseline.total_steps
    assert result.counters.as_dict() == baseline.counters.as_dict()
    assert np.array_equal(result.per_query_ns, baseline.per_query_ns)


class TestPlacementParity:
    @pytest.mark.parametrize("policy", PARTITION_POLICIES)
    @pytest.mark.parametrize("num_devices", DEVICE_COUNTS)
    @pytest.mark.parametrize("execution", ["batched", "scalar"])
    def test_paths_counters_and_times_identical(self, policy, num_devices, execution):
        graph = weighted_graph()
        spec = Node2VecSpec()
        queries = make_queries(graph.num_nodes, walk_length=6, num_queries=32, seed=0)
        baseline = make_engine(graph, spec, 1, "hash", execution=execution).run(queries)
        result = make_engine(graph, spec, num_devices, policy, execution=execution).run(queries)
        assert_placement_parity(baseline, result)
        assert result.num_devices == num_devices
        assert len(result.device_kernels) == (num_devices if num_devices > 1 else 0)

    @pytest.mark.parametrize("policy", PARTITION_POLICIES)
    def test_scalar_and_batched_multi_device_agree(self, policy):
        graph = weighted_graph(seed=9)
        spec = DeepWalkSpec()
        queries = make_queries(graph.num_nodes, walk_length=5, num_queries=24, seed=1)
        scalar = make_engine(graph, spec, 4, policy, execution="scalar", seed=1).run(queries)
        batched = make_engine(graph, spec, 4, policy, execution="batched", seed=1).run(queries)
        assert_placement_parity(scalar, batched)
        assert scalar.kernel.time_ns == batched.kernel.time_ns

    def test_more_devices_than_queries(self):
        """Empty partitions idle without perturbing any walk."""
        graph = weighted_graph(seed=5)
        spec = Node2VecSpec()
        queries = make_queries(graph.num_nodes, walk_length=4, num_queries=3, seed=0)
        baseline = make_engine(graph, spec, 1, "hash").run(queries)
        result = make_engine(graph, spec, 8, "hash").run(queries)
        assert_placement_parity(baseline, result)
        occupied = [k for k in result.device_kernels if k.num_queries > 0]
        assert len(result.device_kernels) == 8
        assert sum(k.num_queries for k in occupied) == 3
        assert result.load_imbalance >= 1.0


class TestMakespanSemantics:
    def test_makespan_never_exceeds_single_device_time(self):
        graph = weighted_graph(seed=7)
        spec = Node2VecSpec()
        queries = make_queries(graph.num_nodes, walk_length=6, seed=0)
        single = make_engine(graph, spec, 1, "hash").run(queries)
        for policy in PARTITION_POLICIES:
            quad = make_engine(graph, spec, 4, policy).run(queries)
            assert quad.kernel.time_ns <= single.kernel.time_ns
            assert quad.makespan_ns == max(k.time_ns for k in quad.device_kernels)
            assert quad.kernel.time_ns > 0

    def test_total_work_is_preserved(self):
        graph = weighted_graph(seed=11)
        spec = DeepWalkSpec()
        queries = make_queries(graph.num_nodes, walk_length=5, seed=0)
        single = make_engine(graph, spec, 1, "hash").run(queries)
        quad = make_engine(graph, spec, 4, "hash").run(queries)
        # Per-query lane times are placement-invariant, so the summed work
        # only differs by the scheduling atomics charged per device run.
        assert quad.kernel.total_work_ns == pytest.approx(single.kernel.total_work_ns, rel=0.05)

    def test_load_imbalance_single_device_is_unity(self):
        graph = weighted_graph(seed=13)
        result = make_engine(graph, Node2VecSpec(), 1, "hash").run(
            make_queries(graph.num_nodes, walk_length=3, num_queries=8, seed=0)
        )
        assert result.load_imbalance == 1.0
        assert result.device_times_ns.shape == (1,)


class TestMultiGPUExecutorEnginePath:
    def test_run_drives_real_engine(self):
        graph = weighted_graph(seed=17)
        spec = Node2VecSpec()
        queries = make_queries(graph.num_nodes, walk_length=5, seed=0)
        engine = make_engine(graph, spec, 1, "hash")
        single = engine.run(queries)
        result = MultiGPUExecutor(DEVICE, 4).run(engine, queries, policy="hash")
        assert result.run is not None
        assert result.run.paths == single.paths
        assert len(result.per_gpu) == 4
        assert result.time_ns == max(k.time_ns for k in result.per_gpu)
        assert result.speedup_over(single.kernel.time_ns) >= 1.0
        # The source engine itself is left untouched.
        assert engine.num_devices == 1

    def test_with_devices_rejects_bad_arguments(self):
        from repro.errors import SimulationError

        graph = weighted_graph(seed=19)
        engine = make_engine(graph, Node2VecSpec(), 1, "hash")
        with pytest.raises(SimulationError):
            engine.with_devices(0)
        with pytest.raises(SimulationError):
            engine.with_devices(2, partition_policy="round-robin")


class TestFacadeMultiDevice:
    # Exercises the deprecated one-shot facade on purpose (legacy-shim test).
    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    @pytest.mark.parametrize("policy", PARTITION_POLICIES)
    def test_flexiwalker_parity_across_device_counts(self, policy):
        graph = weighted_graph(seed=23)
        results = []
        for num_devices in DEVICE_COUNTS:
            config = FlexiWalkerConfig(
                device=DEVICE, num_devices=num_devices, partition_policy=policy, seed=2
            )
            walker = FlexiWalker(graph, Node2VecSpec(), config)
            results.append(walker.run(walk_length=5, num_queries=30))
        for result in results[1:]:
            assert_placement_parity(results[0], result)

    def test_describe_reports_device_configuration(self):
        graph = weighted_graph(seed=29)
        config = FlexiWalkerConfig(device=DEVICE, num_devices=4, partition_policy="balanced")
        walker = FlexiWalker(graph, Node2VecSpec(), config)
        described = walker.describe()
        assert described["num_devices"] == 4
        assert described["partition_policy"] == "balanced"
