"""Section 7.2 extension — INT8 edge property weights.

The paper demonstrates that FlexiWalker keeps its advantage when property
weights are stored in INT8 to cut memory bandwidth (27.6x geomean over
FlowWalker in that configuration).  This experiment runs weighted Node2Vec
with uniform weights twice — once with 8-byte weights and once with 1-byte
weights — for both FlowWalker and FlexiWalker, and reports the speedups.
"""

from __future__ import annotations

from repro.bench.config import ExperimentConfig
from repro.bench.runner import prepare_graph, prepare_queries, run_baseline, run_flexiwalker
from repro.bench.tables import format_table
from repro.stats.summary import geometric_mean

WORKLOAD = "node2vec"


def run_experiment(config: ExperimentConfig | None = None) -> dict:
    """Compare FlexiWalker and FlowWalker under float64 and INT8 weight storage."""
    config = config or ExperimentConfig.quick()
    rows: list[dict] = []
    int8_speedups: list[float] = []

    for dataset in config.datasets:
        graph = prepare_graph(dataset, WORKLOAD, weights="uniform")
        queries = prepare_queries(graph, WORKLOAD, config)
        row: dict[str, object] = {"dataset": dataset}
        for label, weight_bytes in (("fp64", 8), ("int8", 1)):
            flow = run_baseline(
                "FlowWalker", dataset, WORKLOAD, config, graph=graph, queries=queries,
                weight_bytes=weight_bytes, check_memory=False,
            )
            flexi = run_flexiwalker(
                dataset, WORKLOAD, config, graph=graph, queries=queries,
                weight_bytes=weight_bytes, check_memory=False,
            )
            row[f"FlowWalker_{label}_ms"] = flow.time_ms
            row[f"FlexiWalker_{label}_ms"] = flexi.time_ms
            row[f"speedup_{label}"] = flow.time_ms / flexi.time_ms
            if label == "int8":
                int8_speedups.append(flow.time_ms / flexi.time_ms)
        rows.append(row)

    return {
        "rows": rows,
        "summary": {"geomean_int8_speedup_over_flowwalker": geometric_mean(int8_speedups)},
        "config": config,
        "paper_reference": "Section 7.2: INT8 weights; paper geomean 27.59x over FlowWalker",
    }


def format_result(result: dict) -> str:
    headers = [
        "dataset",
        "FlowWalker_fp64_ms", "FlexiWalker_fp64_ms", "speedup_fp64",
        "FlowWalker_int8_ms", "FlexiWalker_int8_ms", "speedup_int8",
    ]
    table = format_table(
        headers,
        [[row[h] for h in headers] for row in result["rows"]],
        title="Section 7.2 — INT8 property-weight extension",
    )
    geo = result["summary"]["geomean_int8_speedup_over_flowwalker"]
    return table + f"\n\nGeomean INT8 speedup over FlowWalker: {geo:.2f}x"


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_result(run_experiment()))


if __name__ == "__main__":  # pragma: no cover
    main()
