"""NextDoor (Jangda et al., EuroSys 2021): transit-parallel GPU graph sampling.

NextDoor samples with **rejection sampling** and organises work by *transit
parallelism*: at every step all walkers sitting on the same node are grouped
together (by sorting) so their neighbour accesses coalesce.  Two consequences
matter for the reproduction:

* for workloads whose proposal bound is a compile-time constant (unweighted
  Node2Vec) it skips the max reduction entirely and is extremely fast —
  the best baseline in Fig. 3a;
* for weighted workloads it must compute every transition weight per step to
  find the bound, and its per-step regrouping sort costs additional memory
  traffic and atomics — which is why it collapses in Fig. 3b / Fig. 12b and
  why its sorting buffers push it out of memory on the largest graphs
  (Fig. 10, SK).
"""

from __future__ import annotations

from repro.baselines.base import BaselineSystem
from repro.gpusim.device import A6000
from repro.gpusim.memory import MemoryModel
from repro.sampling.base import Sampler, StepContext
from repro.sampling.rejection import RejectionSampler
from repro.walks.spec import WalkSpec


def _sampler(spec: WalkSpec) -> RejectionSampler:
    return RejectionSampler()


def _transit_grouping_overhead(ctx: StepContext, sampler: Sampler) -> None:
    """Per-step cost of regrouping walkers by their transit (current) node.

    Between every step NextDoor regroups the active walker records by transit
    node so the next kernel's accesses coalesce; per walker that is a handful
    of uncoalesced scatter accesses plus the atomics that maintain the
    per-transit bucket sizes.
    """
    ctx.counters.random_accesses += 4
    ctx.counters.atomic_ops += 2


def make_nextdoor() -> BaselineSystem:
    """Build the NextDoor baseline model."""
    return BaselineSystem(
        name="NextDoor",
        platform="gpu",
        device=A6000,
        sampler_factory=_sampler,
        description="Transit-parallel GPU rejection sampling (static bound only for unweighted Node2Vec)",
        # Transit grouping sorts all walker positions every step: the sort
        # buffers add per-edge and per-query auxiliary memory, which is what
        # runs out first on the billion-edge graphs.
        memory_model=MemoryModel(graph_overhead=1.0, per_query_bytes=256, auxiliary_per_edge_bytes=12.0),
        step_overhead=_transit_grouping_overhead,
        scheduling="static",
        uses_static_bound=True,
    )
