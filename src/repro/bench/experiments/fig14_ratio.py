"""Fig. 14 — which kernel the runtime actually selects, as weight skew varies.

Weighted Node2Vec on YT / EU / SK with Pareto property weights of shape
``alpha`` from 1 to 4; for each setting the experiment reports the fraction of
sampling steps Flexi-Runtime dispatched to eRJS vs. eRVS.

Expected shape (paper): rejection sampling is selected progressively less as
the distribution becomes more skewed (smaller ``alpha``), because a heavy
tail inflates ``max(w̃)`` relative to ``Σ w̃`` in Eq. 11.
"""

from __future__ import annotations

from repro.bench.config import ExperimentConfig
from repro.bench.runner import prepare_graph, prepare_queries, run_flexiwalker
from repro.bench.tables import format_table

ALPHAS = (1.0, 1.5, 2.0, 2.5, 3.0, 4.0)
DATASETS = ("YT", "EU", "SK")
WORKLOAD = "node2vec"


def run_experiment(config: ExperimentConfig | None = None) -> dict:
    """Measure the eRJS/eRVS selection ratio across the skew sweep."""
    config = config or ExperimentConfig.quick()
    datasets = [d for d in DATASETS if d in config.datasets] or list(DATASETS[:2])
    rows: list[dict] = []

    for dataset in datasets:
        for alpha in ALPHAS:
            graph = prepare_graph(dataset, WORKLOAD, weights="powerlaw", alpha=alpha)
            queries = prepare_queries(graph, WORKLOAD, config)
            run = run_flexiwalker(
                dataset, WORKLOAD, config, graph=graph, queries=queries,
                weights="powerlaw", alpha=alpha, check_memory=False,
            )
            ratio = run.result.selection_ratio() if run.result else {}
            rows.append(
                {
                    "dataset": dataset,
                    "alpha": alpha,
                    "eRJS_fraction": ratio.get("eRJS", 0.0),
                    "eRVS_fraction": ratio.get("eRVS", 0.0),
                }
            )

    return {
        "rows": rows,
        "config": config,
        "paper_reference": "Figure 14: ratio of chosen sampling method across power-law skews",
    }


def format_result(result: dict) -> str:
    headers = ["dataset", "alpha", "eRJS_fraction", "eRVS_fraction"]
    return format_table(
        headers,
        [[row[h] for h in headers] for row in result["rows"]],
        title="Fig. 14 — kernel selection ratio (fraction of steps)",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_result(run_experiment()))


if __name__ == "__main__":  # pragma: no cover
    main()
