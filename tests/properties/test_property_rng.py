"""Property-based tests for the RNG substrate (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng.philox import PhiloxEngine, philox_uniform


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(0, 2**62), counter=st.integers(0, 2**62))
def test_uniform_always_in_unit_interval(seed, counter):
    value = float(philox_uniform(seed, counter))
    assert 0.0 <= value < 1.0


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**32), n=st.integers(1, 200))
def test_engine_reproducible_for_any_seed(seed, n):
    assert np.array_equal(PhiloxEngine(seed).uniform(n), PhiloxEngine(seed).uniform(n))


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**32), idx_a=st.integers(0, 1000), idx_b=st.integers(0, 1000))
def test_distinct_splits_are_distinct_streams(seed, idx_a, idx_b):
    root = PhiloxEngine(seed)
    a = root.split(idx_a).uniform(8)
    b = root.split(idx_b).uniform(8)
    if idx_a == idx_b:
        assert np.array_equal(a, b)
    else:
        assert not np.array_equal(a, b)


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**32), low=st.integers(-100, 100), span=st.integers(1, 200), n=st.integers(1, 100))
def test_integers_always_within_requested_range(seed, low, span, n):
    values = PhiloxEngine(seed).integers(low, low + span, size=n)
    assert values.min() >= low
    assert values.max() < low + span
