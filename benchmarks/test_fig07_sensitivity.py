"""Benchmark: Fig. 7 — kernel skew sensitivity and runtime weight variation."""

from __future__ import annotations

from bench_helpers import run_once

from repro.bench.experiments import fig07_sensitivity as experiment


def test_fig07_sensitivity(benchmark, quick_config):
    result = run_once(benchmark, experiment, quick_config)
    rows = {r["alpha"]: r for r in result["skew_sensitivity"]}
    # eRVS is flat across the skew sweep; eRJS degrades as alpha falls.
    ervs_spread = max(r["eRVS_ms"] for r in rows.values()) / min(r["eRVS_ms"] for r in rows.values())
    assert ervs_spread < 2.0
    assert rows[1.0]["eRJS_ms"] > rows[4.0]["eRJS_ms"]
    # A meaningful fraction of nodes show runtime weight variation (Fig. 7b).
    counts = result["cv_histogram"]["counts"]
    assert sum(counts[1:]) > 0
