"""Versioned cache-invalidation contracts for dynamic graphs.

Every derived structure the engine layers built on top of a frozen
:class:`~repro.graph.csr.CSRGraph` is a pure function of the graph (and,
usually, one workload): the cross-superstep
:class:`~repro.sampling.transition_cache.TransitionCache`, the per-node
compiler :class:`~repro.runtime.frontier.NodeHintTables`, the CSR-level
topology caches (``_edge_key_cache`` / ``_in_degree_cache``), the
:class:`~repro.graph.sharded.ShardedCSRGraph` decompositions and their ghost
caches.  When a :class:`~repro.graph.delta.DeltaCSRGraph` folds a delta into
a new version, all of them go stale — but only *scoped* to the touched-node
set the delta reports, because every per-node entry is a pure function of
that node's own adjacency slice.

This module is the single place those contracts are written down and
executed.  Per structure:

* **TransitionCache** — edge-parallel arrays are remapped onto the new CSR
  layout (untouched nodes keep their materialised values and their
  ``have``-flags; touched nodes are cleared and refill lazily).  The cache
  *object* survives the delta — sibling sessions sharing it keep sharing it.
* **NodeHintTables** — per-node arrays are fixed-size, so the repair is pure
  scoped clearing: touched rows go back to "not computed", untouched rows
  (including the arrays themselves) keep their identity.  The compiled
  workload is swapped for the new version's (its preprocessed per-node
  aggregates are graph-derived).
* **CSRGraph topology caches** — repaired incrementally on the new snapshot:
  the in-degree cache by two bincounts over the delta endpoints, the sorted
  edge-key cache by a vectorised delete/insert of the removed/added keys.
* **ShardedCSRGraph** — re-owns only touched nodes: the owner map is kept
  (delta edges are attributed to the current owners), shards owning no
  touched node are reused *by object identity*, and only affected shards are
  re-sliced against the new snapshot.  Compaction-triggered re-partitioning
  is the service's call (``apply_delta(..., repartition=True)`` drops the
  decompositions so the next use rebuilds them fresh).
* **GhostNodeCache** — dropped: the degree ranking that picked the ghosted
  hubs may shift under any delta, and the budgeted rebuild is lazy anyway.

Scope caveat: the per-node contracts assume a workload's transition weights
and hints for node ``v`` read only ``v``'s own adjacency slice — true for
every shipped node-only workload (they gather the intrinsic edge property
weights).  A custom spec whose weights read *other* nodes' state must be
invalidated fully; pass ``touched_nodes=np.arange(num_nodes)`` to these
contracts to do so.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.delta import DeltaCSRGraph, _intra_offsets

__all__ = ["DeltaInvalidation", "graph_version", "invalidation_for", "repair_csr_caches"]


def graph_version(graph) -> int:
    """The version of a graph: ``graph.version`` for overlays, 0 for CSR."""
    return int(getattr(graph, "version", 0))


@dataclass(frozen=True)
class DeltaInvalidation:
    """What one ``apply_delta`` invalidates, in invalidation-contract terms.

    Attributes
    ----------
    old_version / new_version:
        The version transition this record describes.
    touched_nodes:
        Sorted unique nodes whose out-adjacency changed — the scope of every
        per-node invalidation.
    touched_destinations:
        Sorted unique destination endpoints (in-degree repair scope).
    added / removed:
        The delta's normalised ``(k, 2)`` edge arrays (incremental repairs
        of edge-indexed caches consume them directly).
    """

    old_version: int
    new_version: int
    touched_nodes: np.ndarray
    touched_destinations: np.ndarray
    added: np.ndarray
    removed: np.ndarray


def invalidation_for(graph: DeltaCSRGraph) -> DeltaInvalidation:
    """The invalidation record of the delta that produced ``graph``."""
    if graph.delta is None:
        raise ValueError("version 0 carries no delta to invalidate for")
    delta = graph.delta
    return DeltaInvalidation(
        old_version=graph.version - 1,
        new_version=graph.version,
        touched_nodes=delta.touched_nodes,
        touched_destinations=delta.touched_destinations,
        added=delta.additions,
        removed=delta.removals,
    )


# ---------------------------------------------------------------------- #
# CSRGraph-level topology caches
# ---------------------------------------------------------------------- #
def repair_in_degree_cache(
    old: CSRGraph, new: CSRGraph, record: DeltaInvalidation
) -> None:
    """Incremental in-degree repair: two bincounts over the delta endpoints.

    A no-op when the old snapshot never materialised its cache (the new one
    then stays lazy too — a delta must not force O(E) work the reader never
    asked for).
    """
    if old._in_degree_cache is None:
        return
    degrees = old._in_degree_cache.copy()
    n = new.num_nodes
    if record.removed.size:
        degrees -= np.bincount(record.removed[:, 1], minlength=n).astype(np.int64)
    if record.added.size:
        degrees += np.bincount(record.added[:, 1], minlength=n).astype(np.int64)
    new._in_degree_cache = degrees


def repair_edge_key_cache(
    old: CSRGraph, new: CSRGraph, record: DeltaInvalidation
) -> None:
    """Incremental sorted-edge-key repair: vectorised delete + insert.

    The old cache holds every edge's ``src * n + dst`` key globally sorted;
    removing a pair deletes all its parallel copies (the overlay's removal
    semantics) and additions splice in at their searchsorted positions, so
    the repaired array equals a from-scratch rebuild without the O(E) repeat
    over the new topology.  No-op when the old cache was never built.
    """
    if old._edge_key_cache is None:
        return
    keys = old._edge_key_cache
    n = np.int64(new.num_nodes)
    if record.removed.size:
        removed_keys = np.sort(record.removed[:, 0] * n + record.removed[:, 1])
        lo = np.searchsorted(keys, removed_keys, side="left")
        hi = np.searchsorted(keys, removed_keys, side="right")
        counts = hi - lo
        positions = np.repeat(lo, counts) + _intra_offsets(counts)
        keys = np.delete(keys, positions)
    if record.added.size:
        added_keys = np.sort(record.added[:, 0] * n + record.added[:, 1])
        keys = np.insert(keys, np.searchsorted(keys, added_keys), added_keys)
    new._edge_key_cache = keys


def repair_csr_caches(old: CSRGraph, new: CSRGraph, record: DeltaInvalidation) -> None:
    """Run every CSR-level cache contract for one old → new snapshot pair."""
    repair_in_degree_cache(old, new, record)
    repair_edge_key_cache(old, new, record)


# ---------------------------------------------------------------------- #
# Engine-cache holder
# ---------------------------------------------------------------------- #
def rebind_engine_caches(
    caches,
    new_graph: CSRGraph,
    record: DeltaInvalidation,
    compiled=None,
    repartition: bool = False,
) -> None:
    """Migrate one :class:`~repro.runtime.engine.EngineCaches` holder.

    Applies the scoped contracts in place: the hint tables and transition
    cache keep their object identity (untouched-node entries survive),
    sharded decompositions re-own only touched nodes (or are dropped
    entirely when ``repartition`` asks for a fresh partitioning at the next
    use), and ghost tables are dropped per their contract.  ``compiled``
    must be the new version's compiled workload whenever hint tables exist —
    its preprocessed per-node aggregates are graph-derived.
    """
    if caches.hint_tables is not None:
        caches.hint_tables.rebind(new_graph, record.touched_nodes, compiled=compiled)
    if caches.transition_cache is not None:
        caches.transition_cache.rebind(new_graph, record.touched_nodes)
    if repartition:
        caches.sharded_graphs.clear()
    else:
        for key, sharded in list(caches.sharded_graphs.items()):
            caches.sharded_graphs[key] = sharded.rebind(new_graph, record.touched_nodes)
    caches.ghost_tables.clear()
