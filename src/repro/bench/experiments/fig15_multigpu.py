"""Fig. 15 — multi-GPU scalability.

The paper replicates the graph on 1–4 A6000s and partitions the walk queries
across them with hash-based start-node mapping (range-based mapping scaled
worse).  This experiment reuses the per-query simulated times from a single
FlexiWalker run and replays them through the multi-GPU executor for both
partitioning policies, reporting the speedup over the single-GPU makespan.

Expected shape (paper): near-linear scaling (geomean 3.23x on 4 GPUs), with
hash mapping ahead of range mapping and the gap to ideal explained by load
imbalance (worst on AB).
"""

from __future__ import annotations

from repro.bench.config import ExperimentConfig
from repro.bench.runner import prepare_graph, prepare_queries, run_flexiwalker, scaled_device_for
from repro.bench.tables import format_table
from repro.gpusim.multigpu import MultiGPUExecutor

WORKLOAD = "node2vec"
DATASETS = ("FS", "EU", "AB", "TW", "SK")
GPU_COUNTS = (1, 2, 3, 4)


def run_experiment(config: ExperimentConfig | None = None) -> dict:
    """Measure simulated multi-GPU speedups for hash and range query mapping."""
    config = config or ExperimentConfig.quick()
    datasets = [d for d in DATASETS if d in config.datasets] or list(DATASETS[:2])
    rows: list[dict] = []

    for dataset in datasets:
        graph = prepare_graph(dataset, WORKLOAD, weights="uniform")
        queries = prepare_queries(graph, WORKLOAD, config)
        run = run_flexiwalker(dataset, WORKLOAD, config, graph=graph, queries=queries, check_memory=False)
        per_query_ns = run.result.per_query_ns
        start_nodes = run.result.start_nodes
        device = scaled_device_for("gpu", len(queries), config.waves)

        single = MultiGPUExecutor(device, 1).execute(per_query_ns, start_nodes, policy="hash")
        row: dict[str, object] = {"dataset": dataset}
        for gpus in GPU_COUNTS:
            hash_result = MultiGPUExecutor(device, gpus).execute(per_query_ns, start_nodes, policy="hash")
            range_result = MultiGPUExecutor(device, gpus).execute(per_query_ns, start_nodes, policy="range")
            row[f"hash_x{gpus}"] = hash_result.speedup_over(single.time_ns)
            row[f"range_x{gpus}"] = range_result.speedup_over(single.time_ns)
        row["imbalance_x4"] = MultiGPUExecutor(device, 4).execute(
            per_query_ns, start_nodes, policy="hash"
        ).load_imbalance
        rows.append(row)

    return {
        "rows": rows,
        "config": config,
        "paper_reference": "Figure 15: multi-GPU scalability (paper geomean 3.23x at 4 GPUs, hash mapping)",
    }


def format_result(result: dict) -> str:
    headers = ["dataset"] + [f"hash_x{g}" for g in GPU_COUNTS] + [f"range_x{g}" for g in GPU_COUNTS] + ["imbalance_x4"]
    return format_table(
        headers,
        [[row[h] for h in headers] for row in result["rows"]],
        title="Fig. 15 — multi-GPU speedup over a single GPU",
        float_format="{:.2f}",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_result(run_experiment()))


if __name__ == "__main__":  # pragma: no cover
    main()
