"""Tests for the synthetic dataset registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.datasets import DATASETS, dataset_names, load_dataset, scale_factor


class TestRegistry:
    def test_all_ten_paper_datasets_present(self):
        assert dataset_names() == ["YT", "CP", "LJ", "OK", "EU", "AB", "UK", "TW", "SK", "FS"]

    def test_paper_sizes_recorded(self):
        assert DATASETS["SK"].paper_edges == 3_600_000_000
        assert DATASETS["YT"].paper_nodes == 1_100_000

    def test_scale_models_preserve_size_ordering(self):
        yt = load_dataset("YT")
        sk = load_dataset("SK")
        assert sk.num_edges > yt.num_edges

    def test_average_degree_tracks_paper_ordering(self):
        # OK has a far denser structure than CP in the paper; the scale models
        # must preserve that relation because it drives kernel selection.
        ok = load_dataset("OK")
        cp = load_dataset("CP")
        assert ok.num_edges / ok.num_nodes > cp.num_edges / cp.num_nodes

    def test_scale_factor_is_large(self):
        assert scale_factor("YT") > 100


class TestLoadDataset:
    def test_unknown_dataset_rejected(self):
        with pytest.raises(GraphError):
            load_dataset("NOPE")

    def test_unknown_weight_scheme_rejected(self):
        with pytest.raises(GraphError):
            load_dataset("YT", weights="gaussian")

    def test_case_insensitive_names(self):
        assert load_dataset("yt").num_nodes == load_dataset("YT").num_nodes

    def test_unweighted_scheme_gives_unit_weights(self):
        g = load_dataset("YT", weights="unweighted")
        assert np.all(g.weights == 1.0)

    def test_uniform_scheme_range(self):
        g = load_dataset("YT", weights="uniform")
        assert g.weights.min() >= 1.0
        assert g.weights.max() < 5.0

    def test_powerlaw_scheme_alpha_controls_skew(self):
        heavy = load_dataset("CP", weights="powerlaw", alpha=1.0)
        light = load_dataset("CP", weights="powerlaw", alpha=4.0)
        assert heavy.weights.max() / heavy.weights.mean() > light.weights.max() / light.weights.mean()

    def test_degree_scheme(self):
        g = load_dataset("YT", weights="degree")
        assert np.allclose(g.weights, g.degrees()[g.indices] + 1.0)

    def test_labels_attached_by_default(self):
        assert load_dataset("YT").has_labels

    def test_labels_can_be_disabled(self):
        assert not load_dataset("YT", with_labels=False).has_labels

    def test_results_cached(self):
        assert load_dataset("YT") is load_dataset("YT")

    def test_same_topology_across_weight_schemes(self):
        a = load_dataset("CP", weights="uniform")
        b = load_dataset("CP", weights="powerlaw")
        assert np.array_equal(a.indices, b.indices)
