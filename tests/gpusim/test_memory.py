"""Tests for the memory footprint / OOM model."""

from __future__ import annotations

import pytest

from repro.errors import OutOfMemoryError
from repro.graph.datasets import DATASETS
from repro.graph.generators import cycle_graph
from repro.gpusim.device import A6000
from repro.gpusim.memory import MemoryModel


class TestRequiredBytes:
    def test_grows_with_every_term(self):
        m = MemoryModel(per_query_bytes=100, auxiliary_per_edge_bytes=4.0)
        base = m.required_bytes(10, 100, 10)
        assert m.required_bytes(10, 200, 10) > base
        assert m.required_bytes(10, 100, 20) > base

    def test_graph_overhead_multiplier(self):
        small = MemoryModel(graph_overhead=1.0).required_bytes(1000, 10_000, 0)
        big = MemoryModel(graph_overhead=2.0).required_bytes(1000, 10_000, 0)
        assert big > 1.9 * small

    def test_int8_weights_shrink_footprint(self):
        m = MemoryModel()
        assert m.required_bytes(1000, 10_000, 0, weight_bytes=1) < m.required_bytes(1000, 10_000, 0, weight_bytes=4)

    def test_check_fits_raises_oom(self):
        m = MemoryModel(auxiliary_per_edge_bytes=64.0)
        with pytest.raises(OutOfMemoryError):
            m.check_fits(A6000, 10**9, 5 * 10**9, 10**6, label="huge")

    def test_check_fits_returns_bytes_when_ok(self):
        m = MemoryModel()
        assert m.check_fits(A6000, 1000, 10_000, 100) > 0

    def test_for_graph_matches_csr_footprint(self):
        g = cycle_graph(10)
        assert MemoryModel.for_graph(g) == g.memory_footprint_bytes()


class TestPaperScaleOutcomes:
    """The footprint model must reproduce the paper's OOM pattern on SK."""

    def test_plain_csr_sk_fits_on_a6000(self):
        sk = DATASETS["SK"]
        m = MemoryModel(per_query_bytes=96)
        assert m.required_bytes(sk.paper_nodes, sk.paper_edges, sk.paper_nodes) <= A6000.memory_bytes

    def test_sorting_buffers_push_sk_out_of_memory(self):
        sk = DATASETS["SK"]
        m = MemoryModel(per_query_bytes=256, auxiliary_per_edge_bytes=12.0)
        assert m.required_bytes(sk.paper_nodes, sk.paper_edges, sk.paper_nodes) > A6000.memory_bytes

    def test_small_graphs_fit_for_everyone(self):
        yt = DATASETS["YT"]
        m = MemoryModel(per_query_bytes=256, auxiliary_per_edge_bytes=12.0)
        assert m.required_bytes(yt.paper_nodes, yt.paper_edges, yt.paper_nodes) <= A6000.memory_bytes
