"""Fig. 3 — design-space study: which base sampling method suits dynamic walks.

Runs (un)weighted Node2Vec with the four base sampling methods as embodied by
their host systems — ITS (C-SAW), ALS (Skywalker), RVS (FlowWalker) and RJS
(NextDoor) — on the YT/CP/OK/EU scale models and reports execution times
normalised to ITS, exactly as the figure plots them.

Expected shape (paper): ITS and ALS pay for per-step auxiliary-structure
construction and lose everywhere; RJS wins the unweighted case (its proposal
bound is a compile-time constant there); RVS wins the weighted case where RJS
must max-reduce every step.
"""

from __future__ import annotations

from repro.bench.config import ExperimentConfig
from repro.bench.runner import prepare_graph, prepare_queries, run_baseline
from repro.bench.tables import format_table
from repro.stats.summary import normalize_to

#: sampling-method tag -> the baseline system that embodies it.
METHOD_SYSTEMS = {
    "ITS (C-SAW)": "C-SAW",
    "ALS (Skywalker)": "Skywalker",
    "RVS (FlowWalker)": "FlowWalker",
    "RJS (NextDoor)": "NextDoor",
}

WORKLOAD_VARIANTS = {
    "unweighted": "node2vec_unweighted",
    "weighted": "node2vec",
}


def run_experiment(config: ExperimentConfig | None = None) -> dict:
    """Execute the Fig. 3 comparison and return normalised execution times."""
    config = config or ExperimentConfig.quick()
    results: dict[str, dict[str, dict[str, float]]] = {}
    raw: dict[str, dict[str, dict[str, float]]] = {}

    for variant, workload in WORKLOAD_VARIANTS.items():
        results[variant] = {}
        raw[variant] = {}
        for dataset in config.datasets:
            graph = prepare_graph(dataset, workload)
            queries = prepare_queries(graph, workload, config)
            times: dict[str, float] = {}
            for method, system in METHOD_SYSTEMS.items():
                run = run_baseline(
                    system, dataset, workload, config,
                    graph=graph, queries=queries, check_memory=False,
                )
                times[method] = run.time_ms if run.ok else float("nan")
            raw[variant][dataset] = times
            results[variant][dataset] = normalize_to(times, "ITS (C-SAW)")

    return {
        "normalized": results,
        "raw_ms": raw,
        "config": config,
        "paper_reference": "Figure 3: execution time normalised to ITS (C-SAW)",
    }


def format_result(result: dict) -> str:
    """Render both panels (unweighted / weighted) as normalised tables."""
    blocks = []
    for variant, per_dataset in result["normalized"].items():
        headers = ["dataset"] + list(METHOD_SYSTEMS.keys())
        rows = [
            [dataset] + [per_dataset[dataset][m] for m in METHOD_SYSTEMS]
            for dataset in per_dataset
        ]
        blocks.append(
            format_table(headers, rows, title=f"Fig. 3 ({variant} Node2Vec), normalised to ITS")
        )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_result(run_experiment()))


if __name__ == "__main__":  # pragma: no cover
    main()
