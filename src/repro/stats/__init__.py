"""Statistics utilities used by tests, experiments and the benchmark harness."""

from repro.stats.distributions import (
    chi_square_statistic,
    chi_square_matches,
    coefficient_of_variation,
    empirical_transition_distribution,
    weight_sum_cv_histogram,
)
from repro.stats.summary import geometric_mean, speedup, normalize_to

__all__ = [
    "chi_square_statistic",
    "chi_square_matches",
    "coefficient_of_variation",
    "empirical_transition_distribution",
    "weight_sum_cv_histogram",
    "geometric_mean",
    "speedup",
    "normalize_to",
]
